// Byte-level serialization primitives. Filters are routinely shipped across
// machines (the paper's §2.2 cites Summary Cache, where proxies exchange
// their Bloom summaries), so the query-side structures support a compact,
// versioned wire format built on these helpers. Fixed-width little-endian
// integers; no alignment requirements on the reader side.

#ifndef SHBF_CORE_SERDE_H_
#define SHBF_CORE_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/status.h"

namespace shbf {

/// Append-only byte sink.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
  }

  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
  }

  void PutBytes(const void* data, size_t len) {
    buffer_.append(static_cast<const char*>(data), len);
  }

  size_t size() const { return buffer_.size(); }

  /// Moves the accumulated bytes out; the writer is empty afterwards.
  std::string Take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Bounds-checked byte source. All getters return false (and leave the
/// output untouched) once the input is exhausted or after any failure.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  bool GetU8(uint8_t* v) {
    if (failed_ || pos_ + 1 > bytes_.size()) return Fail();
    *v = static_cast<uint8_t>(bytes_[pos_++]);
    return true;
  }

  bool GetU32(uint32_t* v) {
    if (failed_ || pos_ + 4 > bytes_.size()) return Fail();
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_++]))
             << (8 * i);
    }
    *v = out;
    return true;
  }

  bool GetU64(uint64_t* v) {
    if (failed_ || pos_ + 8 > bytes_.size()) return Fail();
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_++]))
             << (8 * i);
    }
    *v = out;
    return true;
  }

  bool GetBytes(void* out, size_t len) {
    if (failed_ || pos_ + len > bytes_.size()) return Fail();
    std::memcpy(out, bytes_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool AtEnd() const { return !failed_ && pos_ == bytes_.size(); }
  bool failed() const { return failed_; }
  size_t remaining() const { return failed_ ? 0 : bytes_.size() - pos_; }

 private:
  bool Fail() {
    failed_ = true;
    return false;
  }

  std::string_view bytes_;
  size_t pos_ = 0;
  bool failed_ = false;
};

namespace serde {

/// Shared header for every serialized structure: "SHBF" magic, one format
/// version byte, one structure tag byte.
inline constexpr uint32_t kMagic = 0x46424853;  // "SHBF" little-endian
inline constexpr uint8_t kFormatVersion = 1;

enum class StructureTag : uint8_t {
  kBloomFilter = 1,
  kShbfM = 2,
  kShbfA = 3,
  kShbfX = 4,
  kKmBloomFilter = 5,
  kOneMemBloomFilter = 6,
  kCountingBloomFilter = 7,
  kCuckooFilter = 8,
  kSpectralBloomFilter = 9,
  kCmSketch = 10,
  kScmSketch = 11,
  kDynamicCountFilter = 12,
  kGeneralizedShbfM = 13,
  kCountingShbfM = 14,
  kBlockedBloomFilter = 15,
  kBlockedShbfM = 16,
  kSplitBlockBloomFilter = 17,
  kSplitBlockShbfM = 18,
};

/// Writes the common header.
void WriteHeader(ByteWriter* writer, StructureTag tag);

/// Reads and checks the common header against `expected`.
Status ReadHeader(ByteReader* reader, StructureTag expected);

/// Length-prefixed key list (count u64, then per key: length u32 + bytes).
/// Shared by the replay-style adapter serde and the dynamic-filter wrappers.
void WriteKeyList(ByteWriter* writer, const std::vector<std::string>& keys);

/// Reads a WriteKeyList() record. Rejects counts the remaining input cannot
/// satisfy before reserve() can amplify a small crafted blob into a huge
/// allocation. Returns false on any framing error.
bool ReadKeyList(ByteReader* reader, std::vector<std::string>* keys);

/// Length-prefixed (key, u64 count) table — the multiplicity sibling of
/// WriteKeyList/ReadKeyList.
void WriteKeyCountList(
    ByteWriter* writer,
    const std::vector<std::pair<std::string, uint64_t>>& entries);
bool ReadKeyCountList(
    ByteReader* reader,
    std::vector<std::pair<std::string, uint64_t>>* entries);

}  // namespace serde
}  // namespace shbf

#endif  // SHBF_CORE_SERDE_H_
