// Whole-file read/write helpers shared by the CLI tools and the serving
// layer (filter envelopes are shipped as files: build → serve → snapshot
// → reload). WriteStringToFile flushes before reporting success, so an
// OK really means the bytes reached the filesystem.

#ifndef SHBF_CORE_FILE_IO_H_
#define SHBF_CORE_FILE_IO_H_

#include <string>

#include "core/status.h"

namespace shbf {

/// Reads the whole file at `path` into `*out`. kNotFound if unreadable.
Status ReadFileToString(const std::string& path, std::string* out);

/// Replaces the file at `path` with `bytes`, flushing before the verdict
/// (a full disk fails here, not silently in a destructor).
Status WriteStringToFile(const std::string& path, const std::string& bytes);

}  // namespace shbf

#endif  // SHBF_CORE_FILE_IO_H_
