// Whole-file read/write helpers shared by the CLI tools, the serving layer
// and the mmap storage layer (filter envelopes and images are shipped as
// files: build → serve → snapshot → reload). All helpers use POSIX fds
// directly so short writes, ENOSPC and fsync failures surface as Status —
// never as a silently truncated file out of an iostream destructor.

#ifndef SHBF_CORE_FILE_IO_H_
#define SHBF_CORE_FILE_IO_H_

#include <string>

#include "core/status.h"

namespace shbf {

/// Reads the whole file at `path` into `*out`. kNotFound if unopenable,
/// kInternal on a mid-read error.
Status ReadFileToString(const std::string& path, std::string* out);

/// Replaces the file at `path` with `bytes` and fsyncs before the verdict:
/// an OK means every byte reached the device. A short write or write error
/// fails with the path and errno in the message — kResourceExhausted for
/// the ENOSPC/EDQUOT/EFBIG family (full disk, size-capped file), kInternal
/// otherwise.
Status WriteStringToFile(const std::string& path, const std::string& bytes);

/// fsyncs the directory itself, making a just-renamed entry durable (the
/// second half of the write-temp-then-rename crash-consistency protocol;
/// see docs/persistence.md).
Status SyncDirectory(const std::string& dir_path);

/// The directory component of `path` ("." when there is none) — the target
/// SyncDirectory wants after renaming `path` into place.
std::string DirectoryOf(const std::string& path);

}  // namespace shbf

#endif  // SHBF_CORE_FILE_IO_H_
