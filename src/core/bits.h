// Small bit-manipulation helpers shared across the library.

#ifndef SHBF_CORE_BITS_H_
#define SHBF_CORE_BITS_H_

#include <cstddef>
#include <cstdint>

namespace shbf {

/// Number of bits in the machine word the paper reasons about (w in §3.1).
inline constexpr uint32_t kWordBits = 64;

/// The paper's recommended maximum offset span for 64-bit machines: w̄ = w − 7
/// guarantees that bits [pos, pos + w̄) are covered by one unaligned 8-byte
/// load regardless of pos % 8 (§3.1, "we choose w̄ ≤ w − 7").
inline constexpr uint32_t kDefaultMaxOffsetSpan = kWordBits - 7;  // 57

/// Rounds `n` up to the next multiple of `mult` (mult > 0).
constexpr size_t RoundUp(size_t n, size_t mult) {
  return (n + mult - 1) / mult * mult;
}

/// Ceiling division for non-negative integers.
constexpr size_t CeilDiv(size_t a, size_t b) { return (a + b - 1) / b; }

/// True iff `v` is a power of two (0 is not).
constexpr bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Smallest power of two >= v (v >= 1).
constexpr uint64_t NextPowerOfTwo(uint64_t v) {
  uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Lemire's multiply-shift range reduction: maps a uniform 64-bit `x` to
/// [0, n) with one multiply instead of a division. Consumes the HIGH bits
/// of `x`, so callers that also need independent low-entropy fields can
/// take them from the low bits of the same word.
constexpr uint64_t FastRange64(uint64_t x, uint64_t n) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(x) * n) >> 64);
}

}  // namespace shbf

#endif  // SHBF_CORE_BITS_H_
