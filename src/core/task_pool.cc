#include "core/task_pool.h"

#include <algorithm>

namespace shbf {

TaskPool::TaskPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void TaskPool::RunJob(Job* job) {
  size_t i;
  while ((i = job->next.fetch_add(1, std::memory_order_relaxed)) < job->n) {
    (*job->fn)(i);
    if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 == job->n) {
      // Last index: wake the ParallelFor caller. The lock pairs with the
      // caller's wait so the notify cannot slip between its check and sleep.
      std::lock_guard<std::mutex> lock(job->mu);
      job->cv.notify_all();
    }
  }
}

void TaskPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(job);
  }
  cv_.notify_all();
  // The caller works too: if every pool thread is busy elsewhere this
  // degrades to a serial loop instead of blocking, which is what makes
  // nested ParallelFor calls deadlock-free.
  RunJob(job.get());
  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->cv.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == job->n;
    });
  }
  // done == n implies every fn(i) returned, so dropping `fn` is safe;
  // stragglers that claim an index >= n touch only the Job they share.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find(jobs_.begin(), jobs_.end(), job);
  if (it != jobs_.end()) jobs_.erase(it);
}

void TaskPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !jobs_.empty(); });
      if (stop_) return;
      job = jobs_.front();
      if (job->next.load(std::memory_order_relaxed) >= job->n) {
        // Exhausted but not yet erased by its caller; don't spin on it.
        jobs_.pop_front();
        continue;
      }
    }
    RunJob(job.get());
  }
}

TaskPool& TaskPool::Shared() {
  static TaskPool* pool = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    const size_t workers = hw > 1 ? std::min<size_t>(hw - 1, 7) : 0;
    return new TaskPool(workers);
  }();
  return *pool;
}

}  // namespace shbf
