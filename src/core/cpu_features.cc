#include "core/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace shbf {
namespace simd {
namespace {

Level Detect() {
#if defined(__aarch64__) || defined(_M_ARM64)
  // Advanced SIMD is mandatory on AArch64.
  return Level::kNeon;
#elif defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
  // AVX-512F machines always have AVX2, so the tiers stay a strict ladder;
  // kernels without a 512-bit body fall back to their AVX2 one.
  if (__builtin_cpu_supports("avx512f")) return Level::kAvx512;
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
  return Level::kScalar;
#else
  return Level::kScalar;
#endif
}

bool EnvForcesScalar() {
  const char* value = std::getenv("SHBF_FORCE_SCALAR");
  return value != nullptr && value[0] != '\0' &&
         std::strcmp(value, "0") != 0;
}

// -1 = follow the environment/hardware, 0 = native, 1 = scalar. Relaxed
// atomics suffice: the override is a test/bench knob, not a synchronization
// point, and every kernel re-reads it per call.
std::atomic<int> g_force_scalar_override{-1};

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kNeon:   return "neon";
    case Level::kAvx2:   return "avx2";
    case Level::kAvx512: return "avx512";
  }
  return "unknown";
}

Level DetectedLevel() {
  static const Level detected = Detect();
  return detected;
}

Level ActiveLevel() {
  const int override_state =
      g_force_scalar_override.load(std::memory_order_relaxed);
  if (override_state == 1) return Level::kScalar;
  if (override_state == -1) {
    static const bool env_scalar = EnvForcesScalar();
    if (env_scalar) return Level::kScalar;
  }
  return DetectedLevel();
}

void ForceScalar(bool on) {
  g_force_scalar_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::string CpuFeatureString() {
#if defined(__aarch64__) || defined(_M_ARM64)
  const char* arch = "aarch64";
#elif defined(__x86_64__) || defined(_M_X64)
  const char* arch = "x86-64";
#else
  const char* arch = "unknown";
#endif
  return std::string(arch) + " " + LevelName(DetectedLevel());
}

}  // namespace simd
}  // namespace shbf
