#include "core/status.h"

namespace shbf {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Status::Code::kOutOfRange:
      return "OUT_OF_RANGE";
    case Status::Code::kNotFound:
      return "NOT_FOUND";
    case Status::Code::kAlreadyExists:
      return "ALREADY_EXISTS";
    case Status::Code::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case Status::Code::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case Status::Code::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace shbf
