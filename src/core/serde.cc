#include "core/serde.h"

namespace shbf::serde {

void WriteHeader(ByteWriter* writer, StructureTag tag) {
  writer->PutU32(kMagic);
  writer->PutU8(kFormatVersion);
  writer->PutU8(static_cast<uint8_t>(tag));
}

Status ReadHeader(ByteReader* reader, StructureTag expected) {
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t tag = 0;
  if (!reader->GetU32(&magic) || !reader->GetU8(&version) ||
      !reader->GetU8(&tag)) {
    return Status::InvalidArgument("serde: input truncated in header");
  }
  if (magic != kMagic) {
    return Status::InvalidArgument("serde: bad magic (not an SHBF blob)");
  }
  if (version != kFormatVersion) {
    return Status::InvalidArgument("serde: unsupported format version " +
                                   std::to_string(version));
  }
  if (tag != static_cast<uint8_t>(expected)) {
    return Status::InvalidArgument(
        "serde: structure tag mismatch (expected " +
        std::to_string(static_cast<int>(expected)) + ", got " +
        std::to_string(static_cast<int>(tag)) + ")");
  }
  return Status::Ok();
}

}  // namespace shbf::serde
