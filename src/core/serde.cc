#include "core/serde.h"

namespace shbf::serde {

void WriteHeader(ByteWriter* writer, StructureTag tag) {
  writer->PutU32(kMagic);
  writer->PutU8(kFormatVersion);
  writer->PutU8(static_cast<uint8_t>(tag));
}

Status ReadHeader(ByteReader* reader, StructureTag expected) {
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t tag = 0;
  if (!reader->GetU32(&magic) || !reader->GetU8(&version) ||
      !reader->GetU8(&tag)) {
    return Status::InvalidArgument("serde: input truncated in header");
  }
  if (magic != kMagic) {
    return Status::InvalidArgument("serde: bad magic (not an SHBF blob)");
  }
  if (version != kFormatVersion) {
    return Status::InvalidArgument("serde: unsupported format version " +
                                   std::to_string(version));
  }
  if (tag != static_cast<uint8_t>(expected)) {
    return Status::InvalidArgument(
        "serde: structure tag mismatch (expected " +
        std::to_string(static_cast<int>(expected)) + ", got " +
        std::to_string(static_cast<int>(tag)) + ")");
  }
  return Status::Ok();
}

void WriteKeyList(ByteWriter* writer, const std::vector<std::string>& keys) {
  writer->PutU64(keys.size());
  for (const auto& key : keys) {
    writer->PutU32(static_cast<uint32_t>(key.size()));
    writer->PutBytes(key.data(), key.size());
  }
}

bool ReadKeyList(ByteReader* reader, std::vector<std::string>* keys) {
  uint64_t count = 0;
  if (!reader->GetU64(&count)) return false;
  // Each key costs at least its 4-byte length prefix, so a count beyond
  // remaining/4 is unsatisfiable.
  if (count > reader->remaining() / 4) return false;
  keys->clear();
  keys->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t length = 0;
    if (!reader->GetU32(&length) || length > reader->remaining()) return false;
    std::string key(length, '\0');
    if (!reader->GetBytes(key.data(), length)) return false;
    keys->push_back(std::move(key));
  }
  return true;
}

void WriteKeyCountList(
    ByteWriter* writer,
    const std::vector<std::pair<std::string, uint64_t>>& entries) {
  writer->PutU64(entries.size());
  for (const auto& [key, count] : entries) {
    writer->PutU32(static_cast<uint32_t>(key.size()));
    writer->PutBytes(key.data(), key.size());
    writer->PutU64(count);
  }
}

bool ReadKeyCountList(
    ByteReader* reader,
    std::vector<std::pair<std::string, uint64_t>>* entries) {
  uint64_t count = 0;
  if (!reader->GetU64(&count)) return false;
  // Each entry costs at least 12 bytes (length prefix + count).
  if (count > reader->remaining() / 12) return false;
  entries->clear();
  entries->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t length = 0;
    if (!reader->GetU32(&length) || length > reader->remaining()) return false;
    std::string key(length, '\0');
    uint64_t value = 0;
    if (!reader->GetBytes(key.data(), length) || !reader->GetU64(&value)) {
      return false;
    }
    entries->emplace_back(std::move(key), value);
  }
  return true;
}

}  // namespace shbf::serde
