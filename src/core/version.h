// Library version string, printed by `shbf_cli --version` and
// `shbf_server --version` and returned in the wire HELLO response so a
// remote client can log exactly which build it is talking to.

#ifndef SHBF_CORE_VERSION_H_
#define SHBF_CORE_VERSION_H_

namespace shbf {

// 0.6.0: protocol v3 (METRICS opcode), the src/obs/ metrics subsystem,
// host-stamped bench reports.
inline constexpr const char kShbfVersion[] = "0.6.0";

}  // namespace shbf

#endif  // SHBF_CORE_VERSION_H_
