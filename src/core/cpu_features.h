// Runtime CPU-feature detection and the scalar-fallback override switch.
//
// The SIMD probe kernels (core/simd.h) are compiled per-function with
// target attributes, so the binary runs on any x86-64/AArch64 machine and
// picks the widest instruction set at runtime. Tests and benches need to
// pin the decision: the SHBF_FORCE_SCALAR environment variable (read once,
// at first query) and the programmatic ForceScalar() override both demote
// every kernel to its scalar reference implementation, which the SIMD paths
// must match bit for bit (tests/simd_kernel_test.cc).

#ifndef SHBF_CORE_CPU_FEATURES_H_
#define SHBF_CORE_CPU_FEATURES_H_

#include <string>

namespace shbf {
namespace simd {

/// Instruction-set tiers the dispatcher distinguishes. The numeric order is
/// meaningful: higher levels strictly extend lower ones.
enum class Level : int {
  kScalar = 0,  ///< portable C++ reference path
  kNeon = 1,    ///< AArch64 Advanced SIMD (128-bit)
  kAvx2 = 2,    ///< x86-64 AVX2 (256-bit)
  kAvx512 = 3,  ///< x86-64 AVX-512F (512-bit); implies AVX2
};

/// Human-readable tier name ("scalar", "neon", "avx2", "avx512") for logs
/// and benches.
const char* LevelName(Level level);

/// The tier the hardware supports, ignoring every override. Detected once
/// and cached.
Level DetectedLevel();

/// The tier the kernels actually dispatch to: DetectedLevel() unless the
/// SHBF_FORCE_SCALAR=1 environment variable (read at first call) or a
/// ForceScalar(true) call demotes it to kScalar.
Level ActiveLevel();

/// Programmatic override used by tests and benches to compare SIMD and
/// scalar answers in one process. ForceScalar(true) pins ActiveLevel() to
/// kScalar; ForceScalar(false) restores the environment/hardware decision.
void ForceScalar(bool on);

/// Host feature string for bench-report stamping, e.g. "x86-64 avx512" or
/// "aarch64 neon": architecture + the DETECTED tier (not the active one —
/// two runs on the same machine stamp identically even if one forces
/// scalar dispatch; the active level is reported separately).
std::string CpuFeatureString();

}  // namespace simd
}  // namespace shbf

#endif  // SHBF_CORE_CPU_FEATURES_H_
