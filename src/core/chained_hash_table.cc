#include "core/chained_hash_table.h"

#include "core/bits.h"
#include "core/check.h"

namespace shbf {

ChainedHashTable::ChainedHashTable(size_t initial_buckets) {
  buckets_.assign(NextPowerOfTwo(initial_buckets == 0 ? 1 : initial_buckets),
                  nullptr);
}

ChainedHashTable::~ChainedHashTable() { FreeAll(); }

ChainedHashTable::ChainedHashTable(ChainedHashTable&& other) noexcept
    : buckets_(std::move(other.buckets_)), size_(other.size_) {
  other.buckets_.assign(16, nullptr);
  other.size_ = 0;
}

ChainedHashTable& ChainedHashTable::operator=(
    ChainedHashTable&& other) noexcept {
  if (this != &other) {
    FreeAll();
    buckets_ = std::move(other.buckets_);
    size_ = other.size_;
    other.buckets_.assign(16, nullptr);
    other.size_ = 0;
  }
  return *this;
}

void ChainedHashTable::FreeAll() {
  for (Node*& head : buckets_) {
    while (head != nullptr) {
      Node* next = head->next;
      delete head;
      head = next;
    }
  }
  size_ = 0;
}

// FNV-1a, kept private to core so the table has no dependency on src/hash.
uint64_t ChainedHashTable::HashKey(std::string_view key) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  // Finalize: FNV output has weak low bits for short keys; mix them.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h;
}

ChainedHashTable::Node** ChainedHashTable::FindSlot(std::string_view key) {
  size_t bucket = HashKey(key) & (buckets_.size() - 1);
  Node** slot = &buckets_[bucket];
  while (*slot != nullptr && (*slot)->key != key) {
    slot = &(*slot)->next;
  }
  return slot;
}

bool ChainedHashTable::Insert(std::string_view key, uint64_t value) {
  Node** slot = FindSlot(key);
  if (*slot != nullptr) return false;
  *slot = new Node{std::string(key), value, nullptr};
  ++size_;
  if (size_ > buckets_.size()) Rehash(buckets_.size() * 2);
  return true;
}

void ChainedHashTable::Upsert(std::string_view key, uint64_t value) {
  Node** slot = FindSlot(key);
  if (*slot != nullptr) {
    (*slot)->value = value;
    return;
  }
  *slot = new Node{std::string(key), value, nullptr};
  ++size_;
  if (size_ > buckets_.size()) Rehash(buckets_.size() * 2);
}

uint64_t* ChainedHashTable::Find(std::string_view key) {
  Node** slot = FindSlot(key);
  return *slot == nullptr ? nullptr : &(*slot)->value;
}

const uint64_t* ChainedHashTable::Find(std::string_view key) const {
  return const_cast<ChainedHashTable*>(this)->Find(key);
}

uint64_t ChainedHashTable::AddTo(std::string_view key, uint64_t delta) {
  Node** slot = FindSlot(key);
  if (*slot != nullptr) {
    (*slot)->value += delta;
    return (*slot)->value;
  }
  *slot = new Node{std::string(key), delta, nullptr};
  ++size_;
  if (size_ > buckets_.size()) Rehash(buckets_.size() * 2);
  return delta;
}

bool ChainedHashTable::Erase(std::string_view key) {
  Node** slot = FindSlot(key);
  if (*slot == nullptr) return false;
  Node* dead = *slot;
  *slot = dead->next;
  delete dead;
  --size_;
  return true;
}

void ChainedHashTable::ForEach(
    const std::function<void(std::string_view, uint64_t)>& fn) const {
  for (const Node* head : buckets_) {
    for (const Node* node = head; node != nullptr; node = node->next) {
      fn(node->key, node->value);
    }
  }
}

size_t ChainedHashTable::MaxChainLength() const {
  size_t longest = 0;
  for (const Node* head : buckets_) {
    size_t len = 0;
    for (const Node* node = head; node != nullptr; node = node->next) ++len;
    longest = std::max(longest, len);
  }
  return longest;
}

void ChainedHashTable::Rehash(size_t new_buckets) {
  SHBF_DCHECK(IsPowerOfTwo(new_buckets));
  std::vector<Node*> fresh(new_buckets, nullptr);
  for (Node* head : buckets_) {
    while (head != nullptr) {
      Node* next = head->next;
      size_t bucket = HashKey(head->key) & (new_buckets - 1);
      head->next = fresh[bucket];
      fresh[bucket] = head;
      head = next;
    }
  }
  buckets_ = std::move(fresh);
}

}  // namespace shbf
