// Fixed-width packed counters (z bits per counter, 1 <= z <= 32).
//
// Substrate for the counting structures: counting Bloom filters typically use
// 4-bit counters (§3.3 "in most applications, 4 bits for a counter are
// enough"), Spectral BF / CM sketch use 6-bit counters in the paper's
// evaluation (§6.4), and the counting ShBF twins use whatever the caller
// picks. Counters saturate on increment; a saturated ("stuck") counter is
// never decremented — the standard counting-Bloom overflow policy.

#ifndef SHBF_CORE_PACKED_COUNTER_ARRAY_H_
#define SHBF_CORE_PACKED_COUNTER_ARRAY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/bits.h"
#include "core/check.h"
#include "core/serde.h"

namespace shbf {

class PackedCounterArray {
 public:
  /// Creates `num_counters` zeroed counters of `bits_per_counter` bits each.
  PackedCounterArray(size_t num_counters, uint32_t bits_per_counter);

  /// Non-owning read-only view over externally managed packed words (an
  /// mmap'd filter image region). `words` must be 8-byte aligned, hold the
  /// owning layout's ⌈num_counters·z/64⌉ + 1 words (the straddle word
  /// included), and outlive the view. Mutators (Set, Increment, Decrement,
  /// Clear, ReadPayload) CHECK-fail on a view. `saturation_events` restores
  /// the metadata the owning serde carries in its payload.
  static PackedCounterArray View(const uint64_t* words, size_t num_counters,
                                 uint32_t bits_per_counter,
                                 uint64_t saturation_events);

  /// True when this array borrows its words (built by View()).
  bool is_view() const { return is_view_; }

  // words_data_ points into storage_, so the compiler-generated copy would
  // alias the source's buffer; re-anchor on every copy/move (a copied view
  // becomes an owning deep copy, as with BitArray).
  PackedCounterArray(const PackedCounterArray& other);
  PackedCounterArray& operator=(const PackedCounterArray& other);
  PackedCounterArray(PackedCounterArray&& other) noexcept;
  PackedCounterArray& operator=(PackedCounterArray&& other) noexcept;

  size_t num_counters() const { return num_counters_; }
  uint32_t bits_per_counter() const { return bits_per_counter_; }

  /// Largest representable value: 2^z − 1.
  uint64_t max_value() const { return max_value_; }

  /// Reads counter `i`.
  uint64_t Get(size_t i) const;

  /// Reads counters `indices[0..n)` into `out[0..n)` — bit-identical to n
  /// calls to Get, but the shift-and-mask extraction runs through the SIMD
  /// field kernel (core/simd.h: 4 counters per AVX2 op), which the sketch
  /// query paths (k counters then min) feed with their whole gather.
  void GetMany(const size_t* indices, size_t n, uint64_t* out) const;

  /// Overwrites counter `i` with `value` (value <= max_value()).
  void Set(size_t i, uint64_t value);

  /// Adds one, saturating at max_value(). Returns false iff it saturated
  /// (either was already stuck or just became stuck).
  bool Increment(size_t i);

  /// Subtracts one. No-op on a saturated (stuck) counter; CHECK-fails on an
  /// underflow, which always indicates a caller bug (deleting an element
  /// that was never inserted).
  void Decrement(size_t i);

  /// Number of counters that ever saturated. A nonzero value means deletes
  /// may leave residue (stuck counters), as in any counting Bloom filter.
  uint64_t saturation_events() const { return saturation_events_; }

  /// Zeroes all counters and the saturation counter.
  void Clear();

  /// Number of counters with value zero.
  size_t CountZero() const;

  /// Allocated footprint in bytes (the viewed span for views).
  size_t allocated_bytes() const { return num_words_ * sizeof(uint64_t); }

  /// Serialized/mapped payload of the packed words alone (straddle word
  /// included, saturation counter excluded) — the image region size.
  size_t WordPayloadBytes() const { return num_words_ * sizeof(uint64_t); }

  /// The packed words (num_words words; the last is the straddle word).
  const uint64_t* words() const { return words_data_; }
  size_t num_words() const { return num_words_; }

  /// Appends the raw payload (saturation counter + packed words) to `writer`.
  void AppendPayload(ByteWriter* writer) const;

  /// Overwrites the payload from `reader`; the array's geometry must already
  /// match the writer's. Returns false on truncated input.
  bool ReadPayload(ByteReader* reader);

 private:
  /// View() uses this to adopt foreign words.
  PackedCounterArray() = default;

  uint64_t* mutable_words() {
    SHBF_CHECK(!is_view_) << "mutable access to a mapped counter view";
    return storage_.data();
  }

  size_t num_counters_ = 0;
  uint32_t bits_per_counter_ = 0;
  uint64_t max_value_ = 0;
  uint64_t saturation_events_ = 0;
  std::vector<uint64_t> storage_;      ///< owning words; empty for views
  const uint64_t* words_data_ = nullptr;  ///< storage_.data() or the viewed span
  size_t num_words_ = 0;
  bool is_view_ = false;
};

}  // namespace shbf

#endif  // SHBF_CORE_PACKED_COUNTER_ARRAY_H_
