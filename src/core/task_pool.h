// TaskPool — a small work-stealing-free fork/join pool for data-parallel
// fan-out on the query path (shard sub-batches, multiset tree waves).
//
// This is deliberately NOT the server's frame pool (server/EventLoop owns
// that one): a frame worker that re-entered its own queue to fan a batch
// out across shards could deadlock waiting on itself. ParallelFor here is
// deadlock-free by construction — the calling thread participates, so every
// call completes even when all pool threads are busy (it just degrades to
// serial). That also makes nested calls safe: an inner ParallelFor running
// on a pool thread drains its own indices inline.
//
// Answers never depend on the pool: callers hand ParallelFor index-disjoint
// work (each i writes its own slot), so parallel and serial execution are
// bit-identical, and tests/benches exercise both by sizing the pool.

#ifndef SHBF_CORE_TASK_POOL_H_
#define SHBF_CORE_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace shbf {

class TaskPool {
 public:
  /// Spawns `num_threads` workers; 0 means every ParallelFor runs inline on
  /// the caller (handy for tests pinning serial behavior).
  explicit TaskPool(size_t num_threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(i) for every i in [0, n) across the pool threads plus the
  /// calling thread, returning once all n calls have finished. fn must not
  /// throw and must write only state owned by its index. Safe to call from
  /// inside a pool task (the nested call runs on its caller).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Process-wide pool sized to the hardware (hardware_concurrency − 1,
  /// clamped to [0, 7] — the caller thread is the +1). Never destroyed.
  static TaskPool& Shared();

 private:
  /// One fork/join region. Lives on the shared_ptr until the last
  /// participant drops it, so workers may outlive the ParallelFor call's
  /// stack frame safely.
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t n = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };

  /// Claims and runs indices until the job is exhausted.
  static void RunJob(Job* job);

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> jobs_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace shbf

#endif  // SHBF_CORE_TASK_POOL_H_
