// Wall-clock timing and the paper's throughput unit, Mqps (million queries
// per second).

#ifndef SHBF_BENCH_UTIL_TIMER_H_
#define SHBF_BENCH_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace shbf {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Million operations per second.
inline double Mops(uint64_t operations, double seconds) {
  return seconds <= 0.0 ? 0.0 : operations / seconds / 1e6;
}

/// Defeats dead-code elimination of benchmark results.
inline void DoNotOptimize(uint64_t value) {
  asm volatile("" : : "r"(value) : "memory");
}

}  // namespace shbf

#endif  // SHBF_BENCH_UTIL_TIMER_H_
