// Machine-readable bench output: every throughput bench accepts
// --json=<path> and appends rows (workload, keys/s, latency percentiles)
// through this helper, so CI can archive perf trajectories (e.g.
// BENCH_multiset.json) instead of scraping CSV from logs.
//
// Deliberately tiny: flat rows of string/number fields, rendered as
//   {"bench": "<name>", "host": {"cpu": ..., "dispatch": ...,
//    "hw_concurrency": N}, "rows": [{...}, ...]}
// with no external dependency. Field order is insertion order, so diffs of
// committed reports stay readable. The host object stamps where the numbers
// were measured; tools/check_bench_trend.py refuses to compare reports from
// differing hosts or dispatch tiers.

#ifndef SHBF_BENCH_UTIL_JSON_REPORT_H_
#define SHBF_BENCH_UTIL_JSON_REPORT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/status.h"

namespace shbf {

/// One report row: ordered (field, rendered-JSON-value) pairs.
class JsonRow {
 public:
  JsonRow& Set(std::string_view field, std::string_view value);
  JsonRow& Set(std::string_view field, const char* value) {
    return Set(field, std::string_view(value));
  }
  JsonRow& Set(std::string_view field, double value);
  JsonRow& Set(std::string_view field, uint64_t value);

  std::string Render() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// The whole report; rows render in insertion order.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  JsonRow& AddRow() {
    rows_.emplace_back();
    return rows_.back();
  }

  std::string Render() const;

  /// Writes Render() to `path` (no-op returning OK when `path` is empty, so
  /// benches can pass the --json flag value through unconditionally).
  Status WriteToFile(const std::string& path) const;

 private:
  std::string bench_name_;
  std::vector<JsonRow> rows_;
};

/// Collects per-chunk latencies during a timed run and answers percentile
/// queries, for the p50/p99 columns of the JSON reports.
class LatencyRecorder {
 public:
  void Record(double seconds) { samples_.push_back(seconds); }
  bool empty() const { return samples_.empty(); }
  size_t size() const { return samples_.size(); }

  /// The `percentile`-th (0..100) sample in seconds; 0 when empty.
  double PercentileSeconds(double percentile) const;

  /// Raw samples, for merging per-thread recorders into one distribution.
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace shbf

#endif  // SHBF_BENCH_UTIL_JSON_REPORT_H_
