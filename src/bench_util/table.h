// Aligned console tables for the figure/table benches: every bench prints
// the same rows/series the paper's plots show, and these helpers keep the
// output grep-able and diff-able across runs.

#ifndef SHBF_BENCH_UTIL_TABLE_H_
#define SHBF_BENCH_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace shbf {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; cells beyond the header count are dropped, missing cells
  /// render empty.
  void AddRow(std::vector<std::string> cells);

  /// Renders with column alignment, a header rule, and a trailing newline.
  std::string ToString() const;

  /// Convenience: prints ToString() to stdout.
  void Print() const;

  /// Formats a double with `precision` significant decimal places.
  static std::string Num(double value, int precision = 4);

  /// Formats in scientific notation (for FPRs spanning decades).
  static std::string Sci(double value, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a "== title ==" section banner.
void PrintBanner(const std::string& title);

}  // namespace shbf

#endif  // SHBF_BENCH_UTIL_TABLE_H_
