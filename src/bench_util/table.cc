#include "bench_util/table.h"

#include <cstdio>
#include <iostream>

namespace shbf {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out;
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out += cell;
      out.append(widths[c] - cell.size(), ' ');
      if (c + 1 < headers_.size()) out += "  ";
    }
    // Trim trailing padding.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
    return out;
  };

  std::string out = render_row(headers_);
  size_t rule_len = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule_len += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule_len, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::cout << ToString() << std::flush; }

std::string TablePrinter::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::Sci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
  return buf;
}

void PrintBanner(const std::string& title) {
  std::cout << "\n== " << title << " ==\n";
}

}  // namespace shbf
