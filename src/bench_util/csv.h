// Minimal CSV writer: every figure bench can mirror its console series into
// results/<experiment>.csv so plots can be regenerated offline.

#ifndef SHBF_BENCH_UTIL_CSV_H_
#define SHBF_BENCH_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <vector>

#include "core/status.h"

namespace shbf {

class CsvWriter {
 public:
  /// Opens `path` for writing (truncates) and emits the header row.
  static Status Open(const std::string& path,
                     const std::vector<std::string>& headers, CsvWriter* out);

  /// Appends one row; cells are quoted only when they contain separators.
  void AddRow(const std::vector<std::string>& cells);

  bool ok() const { return stream_.good(); }

 private:
  std::ofstream stream_;
};

}  // namespace shbf

#endif  // SHBF_BENCH_UTIL_CSV_H_
