#include "bench_util/json_report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>

#include "core/cpu_features.h"
#include "core/file_io.h"

namespace shbf {
namespace {

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

JsonRow& JsonRow::Set(std::string_view field, std::string_view value) {
  fields_.emplace_back(std::string(field),
                       "\"" + EscapeJson(value) + "\"");
  return *this;
}

JsonRow& JsonRow::Set(std::string_view field, double value) {
  char buffer[64];
  if (std::isfinite(value)) {
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "null");  // JSON has no inf/nan
  }
  fields_.emplace_back(std::string(field), buffer);
  return *this;
}

JsonRow& JsonRow::Set(std::string_view field, uint64_t value) {
  fields_.emplace_back(std::string(field), std::to_string(value));
  return *this;
}

std::string JsonRow::Render() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + EscapeJson(fields_[i].first) + "\": " + fields_[i].second;
  }
  out += "}";
  return out;
}

std::string JsonReport::Render() const {
  // The host stamp: numbers from different machines (or the same machine
  // at a different SIMD dispatch tier) are not comparable, so every report
  // carries where it was measured and check_bench_trend.py refuses to diff
  // reports whose stamps disagree.
  std::string out = "{\n  \"bench\": \"" + EscapeJson(bench_name_) +
                    "\",\n  \"host\": {\"cpu\": \"" +
                    EscapeJson(simd::CpuFeatureString()) +
                    "\", \"dispatch\": \"" +
                    EscapeJson(simd::LevelName(simd::ActiveLevel())) +
                    "\", \"hw_concurrency\": " +
                    std::to_string(std::thread::hardware_concurrency()) +
                    "},\n  \"rows\": [\n";
  for (size_t i = 0; i < rows_.size(); ++i) {
    out += "    " + rows_[i].Render();
    if (i + 1 < rows_.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

Status JsonReport::WriteToFile(const std::string& path) const {
  if (path.empty()) return Status::Ok();
  return WriteStringToFile(path, Render());
}

double LatencyRecorder::PercentileSeconds(double percentile) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::min(std::max(percentile, 0.0), 100.0);
  double nearest_rank = std::ceil(clamped / 100.0 * sorted.size()) - 1;
  if (nearest_rank < 0) nearest_rank = 0;
  const size_t rank = std::min(sorted.size() - 1,
                               static_cast<size_t>(nearest_rank));
  return sorted[rank];
}

}  // namespace shbf
