// Intentionally header-only; this TU anchors the target in the build graph.
#include "bench_util/timer.h"
