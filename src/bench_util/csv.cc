#include "bench_util/csv.h"

namespace shbf {

namespace {

std::string EscapeCell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Status CsvWriter::Open(const std::string& path,
                       const std::vector<std::string>& headers,
                       CsvWriter* out) {
  out->stream_.open(path, std::ios::trunc);
  if (!out->stream_.good()) {
    return Status::Internal("cannot open CSV file: " + path);
  }
  out->AddRow(headers);
  return Status::Ok();
}

void CsvWriter::AddRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) stream_ << ',';
    stream_ << EscapeCell(cells[i]);
  }
  stream_ << '\n';
}

}  // namespace shbf
