#include "multiset/multi_set_index.h"

#include <algorithm>
#include <utility>

#include "core/task_pool.h"
#include "obs/metrics.h"

namespace shbf {

Status MultiSetIndex::CloneFilter(const MembershipFilter& source,
                                  const FilterRegistry& registry,
                                  std::unique_ptr<MembershipFilter>* out) {
  const std::string blob = FilterRegistry::Serialize(source);
  Status s = registry.Deserialize(blob, out);
  if (!s.ok()) {
    return Status::Internal("MultiSetIndex: cannot clone '" +
                            std::string(source.name()) +
                            "' for a summary node: " + s.ToString());
  }
  return Status::Ok();
}

size_t MultiSetIndex::MakeLeaf(uint32_t id, MembershipFilter* filter) {
  Node node;
  node.filter = filter;
  node.set_id = id;
  node.is_leaf = true;
  nodes_.push_back(std::move(node));
  const size_t index = nodes_.size() - 1;
  leaf_of_set_.emplace(id, index);
  return index;
}

namespace {

/// Keys almost surely in no real set, used to measure a fresh summary's
/// empirical false-positive rate. Deterministic, so builds are replayable.
std::string SentinelKey(int i) {
  return std::string("\x01") + "shbf-multiset-sentinel-" + std::to_string(i);
}

constexpr int kSentinelProbes = 64;

/// A summary node earns its probe only while it still says "no" often
/// enough to prune its subtree. A union of too many sets saturates its bit
/// array (fill ratio -> 1, the Bloofi caveat) and answers yes to
/// everything; aggregating past that point adds probes without pruning.
/// Empirical rule: a summary whose sentinel FPR exceeds 3/4 is discarded
/// and its children finalized as roots.
bool SummaryIsDiscriminative(const MembershipFilter& summary) {
  int positives = 0;
  for (int i = 0; i < kSentinelProbes; ++i) {
    positives += summary.Contains(SentinelKey(i)) ? 1 : 0;
  }
  return positives * 4 <= kSentinelProbes * 3;
}

}  // namespace

Status MultiSetIndex::BuildTree(const std::vector<size_t>& leaves,
                                const FilterRegistry& registry) {
  size_t tree_levels = 1;
  std::vector<size_t> level = leaves;
  while (level.size() > 1) {
    std::vector<size_t> next;
    bool aggregated = false;
    for (size_t begin = 0; begin < level.size();
         begin += options_.branching) {
      const size_t end =
          std::min(begin + options_.branching, level.size());
      if (end - begin == 1) {
        // A lone tail node needs no summary of itself.
        next.push_back(level[begin]);
        continue;
      }
      // Clone the first child as the summary seed, then union the
      // siblings in. A sibling whose geometry refuses the merge (same
      // backend name, different spec) is demoted to the scan list —
      // heterogeneous catalogs degrade, they don't fail.
      Node parent;
      Status s = CloneFilter(*nodes_[level[begin]].filter, registry,
                             &parent.summary);
      if (!s.ok()) return s;
      parent.children.push_back(level[begin]);
      for (size_t c = begin + 1; c < end; ++c) {
        const size_t child = level[c];
        if (parent.summary->MergeFrom(*nodes_[child].filter).ok()) {
          parent.children.push_back(child);
        } else if (nodes_[child].is_leaf) {
          scan_leaves_.push_back(child);
        } else {
          // One backend name can hold several geometry clusters, each of
          // which built its own summary; when those summaries refuse to
          // merge at a higher level, the child is a finished subtree —
          // finalize it as a root. Degrade, don't fail.
          roots_.push_back(child);
        }
      }
      if (parent.children.size() == 1) {
        // Every sibling was demoted: the summary would duplicate its only
        // child, so promote the child instead.
        next.push_back(parent.children.front());
        continue;
      }
      if (!SummaryIsDiscriminative(*parent.summary)) {
        // Saturated union: further aggregation cannot prune. The children
        // are finished subtrees — finalize them as roots.
        for (size_t child : parent.children) roots_.push_back(child);
        continue;
      }
      parent.filter = parent.summary.get();
      nodes_.push_back(std::move(parent));
      const size_t parent_index = nodes_.size() - 1;
      for (size_t child : nodes_[parent_index].children) {
        nodes_[child].parent = parent_index;
      }
      next.push_back(parent_index);
      aggregated = true;
    }
    if (!aggregated) {
      // Nothing combined this round (every chunk saturated or was a lone
      // tail): whatever is left are roots.
      roots_.insert(roots_.end(), next.begin(), next.end());
      levels_ = std::max(levels_, tree_levels);
      return Status::Ok();
    }
    ++tree_levels;
    level = std::move(next);
  }
  if (!level.empty()) roots_.push_back(level.front());
  levels_ = std::max(levels_, tree_levels);
  return Status::Ok();
}

Status MultiSetIndex::Build(SetCatalog* catalog,
                            const MultiSetIndexOptions& options,
                            std::unique_ptr<MultiSetIndex>* out) {
  if (catalog == nullptr || catalog->empty()) {
    return Status::FailedPrecondition(
        "MultiSetIndex: cannot index an empty catalog");
  }
  if (options.branching < 2) {
    return Status::InvalidArgument(
        "MultiSetIndex: branching must be >= 2, got " +
        std::to_string(options.branching));
  }
  auto index = std::unique_ptr<MultiSetIndex>(new MultiSetIndex());
  index->options_ = options;
  index->engine_ = BatchQueryEngine(
      BatchOptions{.batch_size = options.batch_size < 1 ? size_t{1}
                                                        : options.batch_size});
  index->id_bound_ = catalog->id_bound();

  // Partition the catalog: mergeable backends group per registry name (one
  // tree each), everything else scans. Entries() is id-ordered, so ids
  // within a tree cluster deterministically.
  std::map<std::string, std::vector<size_t>> groups;
  for (const SetCatalog::SetEntry* entry : catalog->Entries()) {
    MembershipFilter* filter = catalog->MutableFilter(entry->id);
    const size_t leaf = index->MakeLeaf(entry->id, filter);
    if (!options.force_scan &&
        (filter->capabilities() & kMergeable) != 0) {
      groups[std::string(filter->name())].push_back(leaf);
    } else {
      index->scan_leaves_.push_back(leaf);
    }
  }
  for (auto& [name, leaves] : groups) {
    if (leaves.size() < 2) {
      // A one-set tree is a scan with extra steps.
      index->scan_leaves_.insert(index->scan_leaves_.end(), leaves.begin(),
                                 leaves.end());
      continue;
    }
    Status s = index->BuildTree(leaves, FilterRegistry::Global());
    if (!s.ok()) return s;
  }
  if (index->levels_ == 0 && !index->scan_leaves_.empty()) index->levels_ = 1;
  *out = std::move(index);
  return Status::Ok();
}

void MultiSetIndex::WhichSets(std::string_view key, SetIdBitmap* out) const {
  *out = SetIdBitmap(id_bound_);
  uint64_t probes = 0;
  for (size_t leaf : scan_leaves_) {
    const Node& node = nodes_[leaf];
    if (!node.live || node.filter == nullptr) continue;
    ++probes;
    if (node.filter->Contains(key)) out->Set(node.set_id);
  }
  std::vector<size_t> stack(roots_.rbegin(), roots_.rend());
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.is_leaf && (!node.live || node.filter == nullptr)) continue;
    ++probes;
    if (!node.filter->Contains(key)) continue;
    if (node.is_leaf) {
      out->Set(node.set_id);
    } else {
      stack.insert(stack.end(), node.children.rbegin(),
                   node.children.rend());
    }
  }
  probes_.fetch_add(probes, std::memory_order_relaxed);
}

namespace {

/// Below this many keys the parallel fan-out's task handoff outweighs the
/// probe work it spreads; matches the sharded wrapper's threshold.
constexpr size_t kParallelWhichSetsMinKeys = 512;

}  // namespace

template <typename Keys>
void MultiSetIndex::WhichSetsBatchImpl(const Keys& keys,
                                       std::vector<SetIdBitmap>* out) const {
  out->assign(keys.size(), SetIdBitmap(id_bound_));
  if (keys.empty()) return;
  uint64_t probes = 0;
  // Keys dropped at interior summaries (alive - survivors): the work the
  // tree saved versus brute-force scanning every leaf. pruned/probes is the
  // summary tree's effectiveness ratio in the metrics dump.
  uint64_t pruned = 0;
  const bool parallel = keys.size() >= kParallelWhichSetsMinKeys;

  // Scan leaves see every key, in one engine pass per filter. Distinct
  // leaves are distinct filter objects, so the passes are independent: fan
  // them across the pool with per-leaf result buffers and merge the bitmap
  // updates serially afterwards (two tasks must not Set() the same bitmap).
  std::vector<size_t> live_scan;
  live_scan.reserve(scan_leaves_.size());
  for (size_t leaf : scan_leaves_) {
    const Node& node = nodes_[leaf];
    if (node.live && node.filter != nullptr) live_scan.push_back(leaf);
  }
  {
    std::vector<std::vector<uint8_t>> leaf_results(live_scan.size());
    auto scan_one = [&](size_t t) {
      engine_.ContainsBatch(*nodes_[live_scan[t]].filter, keys,
                            &leaf_results[t]);
    };
    if (parallel && live_scan.size() >= 2) {
      TaskPool::Shared().ParallelFor(live_scan.size(), scan_one);
    } else {
      for (size_t t = 0; t < live_scan.size(); ++t) scan_one(t);
    }
    for (size_t t = 0; t < live_scan.size(); ++t) {
      probes += keys.size();
      const Node& node = nodes_[live_scan[t]];
      for (size_t i = 0; i < keys.size(); ++i) {
        if (leaf_results[t][i] != 0) (*out)[i].Set(node.set_id);
      }
    }
  }

  // Tree descent: each work item is (node, indices of keys still alive for
  // that subtree). One engine batch per node resolves the whole frontier —
  // hashes precomputed and windows prefetched across the group — and only
  // the survivors descend. The descent proceeds in waves (one wave = one
  // tree level of pending items): every item in a wave touches a distinct
  // node, so the engine passes fan across the pool; the bitmap updates and
  // the next wave's construction stay serial, in wave order, which keeps
  // answers and the probe count bit-identical to the old depth-first loop.
  struct Work {
    size_t node;
    std::vector<uint32_t> alive;
  };
  std::vector<uint32_t> all(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) all[i] = static_cast<uint32_t>(i);
  std::vector<Work> wave;
  wave.reserve(roots_.size());
  for (size_t root : roots_) wave.push_back(Work{root, all});

  // Survivor frontiers are views into the caller's keys — the descent
  // copies indices and pointers, never key bytes.
  while (!wave.empty()) {
    std::vector<std::vector<uint32_t>> survivors(wave.size());
    auto probe_one = [&](size_t t) {
      const Work& work = wave[t];
      const Node& node = nodes_[work.node];
      if (node.is_leaf && (!node.live || node.filter == nullptr)) return;
      std::vector<uint8_t> results;
      // A full frontier probes `keys` directly, skipping even the view
      // gather (once per root per batch).
      if (work.alive.size() == keys.size()) {
        engine_.ContainsBatch(*node.filter, keys, &results);
      } else {
        std::vector<std::string_view> gathered;
        gathered.reserve(work.alive.size());
        for (uint32_t i : work.alive) gathered.emplace_back(keys[i]);
        engine_.ContainsBatch(*node.filter, gathered, &results);
      }
      survivors[t].reserve(work.alive.size());
      for (size_t g = 0; g < work.alive.size(); ++g) {
        if (results[g] != 0) survivors[t].push_back(work.alive[g]);
      }
    };
    if (parallel && wave.size() >= 2) {
      TaskPool::Shared().ParallelFor(wave.size(), probe_one);
    } else {
      for (size_t t = 0; t < wave.size(); ++t) probe_one(t);
    }
    std::vector<Work> next;
    for (size_t t = 0; t < wave.size(); ++t) {
      const Node& node = nodes_[wave[t].node];
      if (node.is_leaf && (!node.live || node.filter == nullptr)) continue;
      probes += wave[t].alive.size();
      if (!node.is_leaf) {
        pruned += wave[t].alive.size() - survivors[t].size();
      }
      if (survivors[t].empty()) continue;
      if (node.is_leaf) {
        for (uint32_t i : survivors[t]) (*out)[i].Set(node.set_id);
        continue;
      }
      for (size_t c = 0; c + 1 < node.children.size(); ++c) {
        next.push_back(Work{node.children[c], survivors[t]});
      }
      next.push_back(Work{node.children.back(), std::move(survivors[t])});
    }
    wave = std::move(next);
  }
  probes_.fetch_add(probes, std::memory_order_relaxed);
  if (obs::Enabled()) {
    static obs::Counter* const probes_total =
        obs::MetricsRegistry::Global().GetCounter("multiset.probes_total");
    static obs::Counter* const pruned_total =
        obs::MetricsRegistry::Global().GetCounter(
            "multiset.pruned_keys_total");
    probes_total->Increment(probes);
    pruned_total->Increment(pruned);
  }
}

void MultiSetIndex::WhichSetsBatch(const std::vector<std::string>& keys,
                                   std::vector<SetIdBitmap>* out) const {
  WhichSetsBatchImpl(keys, out);
}

void MultiSetIndex::WhichSetsBatch(const std::vector<std::string_view>& keys,
                                   std::vector<SetIdBitmap>* out) const {
  WhichSetsBatchImpl(keys, out);
}

Status MultiSetIndex::AddKey(uint32_t set_id, std::string_view key) {
  auto it = leaf_of_set_.find(set_id);
  if (it == leaf_of_set_.end()) {
    return Status::NotFound("MultiSetIndex: no live set with id " +
                            std::to_string(set_id));
  }
  Node& leaf = nodes_[it->second];
  leaf.filter->Add(key);
  for (size_t p = leaf.parent; p != kNoParent; p = nodes_[p].parent) {
    nodes_[p].summary->Add(key);
  }
  return Status::Ok();
}

Status MultiSetIndex::AddKeys(uint32_t set_id,
                              const std::vector<std::string>& keys) {
  for (const auto& key : keys) {
    Status s = AddKey(set_id, key);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status MultiSetIndex::RemoveSet(uint32_t set_id) {
  auto it = leaf_of_set_.find(set_id);
  if (it == leaf_of_set_.end()) {
    return Status::NotFound("MultiSetIndex: no live set with id " +
                            std::to_string(set_id));
  }
  Node& leaf = nodes_[it->second];
  leaf.live = false;
  leaf.filter = nullptr;  // the catalog is about to free it
  scan_leaves_.erase(
      std::remove(scan_leaves_.begin(), scan_leaves_.end(), it->second),
      scan_leaves_.end());
  leaf_of_set_.erase(it);
  return Status::Ok();
}

void MultiSetIndex::PrepareForConstReads() {
  for (Node& node : nodes_) {
    if (node.filter != nullptr) node.filter->PrepareForConstReads();
  }
}

MultiSetIndex::Stats MultiSetIndex::stats() const {
  Stats stats;
  stats.sets = leaf_of_set_.size();
  stats.trees = roots_.size();
  stats.levels = levels_;
  stats.probes = probes_.load(std::memory_order_relaxed);
  for (const Node& node : nodes_) {
    if (node.is_leaf) continue;
    ++stats.summary_nodes;
    stats.summary_memory_bytes += node.summary->memory_bytes();
  }
  for (size_t leaf : scan_leaves_) {
    if (nodes_[leaf].live) ++stats.scan_leaves;
  }
  stats.tree_leaves = stats.sets - stats.scan_leaves;
  return stats;
}

}  // namespace shbf
