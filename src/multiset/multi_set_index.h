// MultiSetIndex — Bloofi-style "which of my N sets contain key k" over a
// SetCatalog (Crainiceanu & Lemire's hierarchical Bloom-filter index,
// adapted to the registry's heterogeneous backends).
//
// Every layer built so far answers questions about ONE set at a time; a
// deployment holding hundreds of named filters pays N probes per key for
// the multi-set question. This index builds a tree of merged summary
// filters over the catalog's mergeable sets (MergeFrom / BitArray::OrWith:
// a summary is the bitwise union of its children, hence a strict superset —
// a summary miss prunes the whole subtree with zero false negatives), so a
// key absent from most sets costs O(log N) probes instead of N. Sets whose
// backend cannot merge (fingerprint/counting schemes) fall back to a
// brute-force scan list and are probed individually — correctness is never
// gated on the backend.
//
// Tree construction clones the first child of each node through the
// registry's serialize/deserialize round trip (geometry and hash family
// included) and merges the siblings in; a sibling whose geometry refuses to
// merge is demoted to the scan list rather than rejected. Trees are built
// per registry backend name, and aggregation is ADAPTIVE: a freshly merged
// summary is probed with sentinel keys, and once its empirical FPR shows
// the union has saturated its bit array (the Bloofi caveat — a summary of
// too many sets says yes to everything), aggregation stops there and the
// children become tree roots. Sparse member filters (high bits/key) earn
// deep trees; densely filled ones degrade gracefully toward the scan.
//
// Batched queries (WhichSetsBatch) descend the tree level by level with a
// shared BatchQueryEngine pass per node: every key still alive for that
// subtree is hashed, prefetched and resolved in one two-pass engine call,
// so the engine's memory-level parallelism applies at every level of the
// descent — and dead keys leave the frontier at the highest level possible.
//
// Thread safety: queries are const and safe to run concurrently AFTER
// PrepareForConstReads(); AddKey / AddKeys / RemoveSet require exclusive
// access (the server wraps the index in a shared_mutex). The index holds
// raw pointers into the catalog's filters: the catalog must outlive the
// index, and RemoveSet must be told about a drop BEFORE the catalog frees
// the filter.

#ifndef SHBF_MULTISET_MULTI_SET_INDEX_H_
#define SHBF_MULTISET_MULTI_SET_INDEX_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/set_catalog.h"
#include "core/status.h"
#include "engine/batch_query_engine.h"
#include "multiset/set_id_bitmap.h"

namespace shbf {

struct MultiSetIndexOptions {
  /// Children per summary node. Larger fan-out = shallower tree but less
  /// pruning per miss; 4–16 covers the useful range (Bloofi uses small
  /// fan-outs for the same reason B-trees do).
  size_t branching = 8;

  /// Group size of the engine every node's batch resolves through.
  size_t batch_size = 32;

  /// Skip tree construction: every set becomes a scan leaf. This is the
  /// linear brute-force reference the bench and the smoke gates compare
  /// against — same code path, no summaries.
  bool force_scan = false;
};

class MultiSetIndex {
 public:
  /// Builds the index over every set in `catalog` (which must outlive the
  /// index and not add/drop sets behind its back — route maintenance
  /// through AddKey/RemoveSet). Fails on an empty catalog or invalid
  /// options.
  static Status Build(SetCatalog* catalog, const MultiSetIndexOptions& options,
                      std::unique_ptr<MultiSetIndex>* out);

  /// The SetIdBitmap universe (catalog->id_bound() at build time).
  size_t id_bound() const { return id_bound_; }

  /// Sets bit s in `*out` iff set s (possibly) contains `key` — exactly the
  /// bits a brute-force Contains loop over the live sets would set (no
  /// false negatives; the same false positives as the member filters).
  void WhichSets(std::string_view key, SetIdBitmap* out) const;

  /// Batched WhichSets: `out` is resized to keys.size(); entry i receives
  /// WhichSets(keys[i]). Frontier descent with one engine batch per node;
  /// survivor frontiers are gathered as views into `keys`, so no key bytes
  /// are copied during the descent.
  void WhichSetsBatch(const std::vector<std::string>& keys,
                      std::vector<SetIdBitmap>* out) const;

  /// View-indexed overload for callers that do not own contiguous
  /// std::strings (e.g. keys parsed in place from a request buffer). The
  /// views must stay valid for the duration of the call.
  void WhichSetsBatch(const std::vector<std::string_view>& keys,
                      std::vector<SetIdBitmap>* out) const;

  /// Incremental maintenance: adds `key` to set `set_id`'s filter AND to
  /// every summary on its root path, so the superset invariant holds
  /// without a rebuild. kNotFound for a dead or unknown id.
  Status AddKey(uint32_t set_id, std::string_view key);
  Status AddKeys(uint32_t set_id, const std::vector<std::string>& keys);

  /// Detaches a set: its id stops being reported and its filter pointer is
  /// dropped (call BEFORE SetCatalog::DropSet frees it). Summaries keep the
  /// dropped set's bits until the next full Build — stale bits cost false
  /// probes, never wrong answers.
  Status RemoveSet(uint32_t set_id);

  /// Completes deferred (lazy) builds in every member and summary filter,
  /// so subsequent const queries are pure (shared-lock safe). Call after a
  /// maintenance burst, from the writer section.
  void PrepareForConstReads();

  struct Stats {
    size_t sets = 0;           ///< live sets reported by queries
    size_t tree_leaves = 0;    ///< sets reachable through summary trees
    size_t scan_leaves = 0;    ///< sets probed brute-force
    size_t summary_nodes = 0;  ///< owned merged filters (internal nodes)
    size_t trees = 0;          ///< tree roots probed per query
    size_t levels = 0;         ///< deepest tree (1 = leaves only)
    size_t summary_memory_bytes = 0;  ///< footprint of the owned summaries
    uint64_t probes = 0;       ///< cumulative per-key filter probes served
  };
  Stats stats() const;

 private:
  static constexpr size_t kNoParent = static_cast<size_t>(-1);

  struct Node {
    /// Probed filter: the catalog's for leaves (null once dropped),
    /// summary.get() for internal nodes.
    MembershipFilter* filter = nullptr;
    /// Owned merged filter (internal nodes only).
    std::unique_ptr<MembershipFilter> summary;
    std::vector<size_t> children;  ///< empty for leaves
    size_t parent = kNoParent;
    uint32_t set_id = 0;  ///< leaves only
    bool is_leaf = false;
    bool live = true;
  };

  MultiSetIndex() = default;

  /// Makes a leaf node for catalog set `id` backed by `filter`.
  size_t MakeLeaf(uint32_t id, MembershipFilter* filter);

  /// Builds one summary tree bottom-up over `leaves` (node indices); leaves
  /// whose geometry refuses to merge are moved to `scan_leaves_`.
  Status BuildTree(const std::vector<size_t>& leaves,
                   const FilterRegistry& registry);

  /// Clones `source` via the registry envelope round trip.
  static Status CloneFilter(const MembershipFilter& source,
                            const FilterRegistry& registry,
                            std::unique_ptr<MembershipFilter>* out);

  /// Shared frontier descent behind both WhichSetsBatch overloads; `Keys`
  /// is a vector of std::string or std::string_view.
  template <typename Keys>
  void WhichSetsBatchImpl(const Keys& keys,
                          std::vector<SetIdBitmap>* out) const;

  MultiSetIndexOptions options_;
  BatchQueryEngine engine_{BatchOptions{}};
  size_t id_bound_ = 0;

  std::vector<Node> nodes_;
  std::vector<size_t> roots_;        ///< one per summary tree
  std::vector<size_t> scan_leaves_;  ///< probed for every key
  std::map<uint32_t, size_t> leaf_of_set_;

  size_t levels_ = 0;
  /// Cumulative key-probe counter (one per key per filter consulted), the
  /// bench's evidence that the tree touches fewer filters than the scan.
  mutable std::atomic<uint64_t> probes_{0};
};

}  // namespace shbf

#endif  // SHBF_MULTISET_MULTI_SET_INDEX_H_
