// SetIdBitmap — the answer type of the multi-set index: one bit per
// catalog set id, set iff that set (possibly) contains the queried key.
//
// Catalog ids are stable and monotonically increasing (never reused after a
// drop), so the bitmap is indexed directly by id and sized to the largest id
// the index knows about. Kept header-only: the query hot loop sets and tests
// bits, and the bench compares whole bitmaps for bit-identical answers.

#ifndef SHBF_MULTISET_SET_ID_BITMAP_H_
#define SHBF_MULTISET_SET_ID_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace shbf {

class SetIdBitmap {
 public:
  SetIdBitmap() = default;

  /// A bitmap able to hold ids in [0, universe).
  explicit SetIdBitmap(size_t universe)
      : universe_(universe), words_((universe + 63) / 64, 0) {}

  /// Largest id + 1 this bitmap can represent.
  size_t universe() const { return universe_; }

  void Set(uint32_t id) { words_[id >> 6] |= uint64_t{1} << (id & 63); }

  bool Test(uint32_t id) const {
    return id < universe_ &&
           ((words_[id >> 6] >> (id & 63)) & 1u) != 0;
  }

  void ClearAll() { words_.assign(words_.size(), 0); }

  /// Number of set bits.
  size_t Count() const {
    size_t total = 0;
    for (uint64_t word : words_) total += __builtin_popcountll(word);
    return total;
  }

  /// The set ids present, ascending.
  std::vector<uint32_t> ToIds() const {
    std::vector<uint32_t> ids;
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        ids.push_back(static_cast<uint32_t>(w * 64 + bit));
        word &= word - 1;
      }
    }
    return ids;
  }

  friend bool operator==(const SetIdBitmap& a, const SetIdBitmap& b) {
    return a.universe_ == b.universe_ && a.words_ == b.words_;
  }
  friend bool operator!=(const SetIdBitmap& a, const SetIdBitmap& b) {
    return !(a == b);
  }

 private:
  size_t universe_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace shbf

#endif  // SHBF_MULTISET_SET_ID_BITMAP_H_
