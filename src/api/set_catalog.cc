#include "api/set_catalog.h"

#include <utility>

#include "core/serde.h"

namespace shbf {
namespace {

/// Catalog envelope: "SHBC" magic, one version byte, next_id, set count,
/// then per set: id, name string, length-prefixed nested registry envelope.
constexpr uint32_t kCatalogMagic = 0x43424853;  // "SHBC" little-endian
constexpr uint8_t kCatalogVersion = 1;

/// Bytes a set record cannot be smaller than (id + name length + blob
/// length), the divisor of the count-bomb check.
constexpr size_t kMinSetRecordBytes = 4 + 4 + 4;

}  // namespace

Status SetCatalog::AddSet(std::string name,
                          std::unique_ptr<MembershipFilter> filter,
                          uint32_t* id) {
  if (name.empty() || name.size() > kMaxNameBytes) {
    return Status::InvalidArgument("SetCatalog: bad set name length " +
                                   std::to_string(name.size()));
  }
  if (filter == nullptr) {
    return Status::InvalidArgument("SetCatalog: null filter for set '" +
                                   name + "'");
  }
  if (id_by_name_.find(name) != id_by_name_.end()) {
    return Status::AlreadyExists("SetCatalog: set '" + name +
                                 "' already exists");
  }
  // Ids are never reused, so the id space itself is consumable: bounding
  // next_id (not just the live count) keeps id_bound() — and with it every
  // SetIdBitmap allocation downstream — under kMaxSets forever.
  if (by_id_.size() >= kMaxSets || next_id_ >= kMaxSets) {
    return Status::ResourceExhausted("SetCatalog: catalog id space is full");
  }
  const uint32_t assigned = next_id_++;
  SetEntry entry;
  entry.id = assigned;
  entry.name = name;
  entry.filter = std::move(filter);
  by_id_.emplace(assigned, std::move(entry));
  id_by_name_.emplace(std::move(name), assigned);
  if (id != nullptr) *id = assigned;
  return Status::Ok();
}

Status SetCatalog::DropSet(std::string_view name) {
  auto it = id_by_name_.find(name);
  if (it == id_by_name_.end()) {
    return Status::NotFound("SetCatalog: no set named '" + std::string(name) +
                            "'");
  }
  by_id_.erase(it->second);
  id_by_name_.erase(it);
  return Status::Ok();
}

Status SetCatalog::RenameSet(std::string_view from, std::string to) {
  if (to.empty() || to.size() > kMaxNameBytes) {
    return Status::InvalidArgument("SetCatalog: bad new name length " +
                                   std::to_string(to.size()));
  }
  auto it = id_by_name_.find(from);
  if (it == id_by_name_.end()) {
    return Status::NotFound("SetCatalog: no set named '" + std::string(from) +
                            "'");
  }
  if (from == to) return Status::Ok();
  if (id_by_name_.find(to) != id_by_name_.end()) {
    return Status::AlreadyExists("SetCatalog: set '" + to +
                                 "' already exists");
  }
  const uint32_t id = it->second;
  id_by_name_.erase(it);
  id_by_name_.emplace(to, id);
  by_id_.at(id).name = std::move(to);
  return Status::Ok();
}

const SetCatalog::SetEntry* SetCatalog::Find(std::string_view name) const {
  auto it = id_by_name_.find(name);
  return it == id_by_name_.end() ? nullptr : &by_id_.at(it->second);
}

const SetCatalog::SetEntry* SetCatalog::FindById(uint32_t id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &it->second;
}

MembershipFilter* SetCatalog::MutableFilter(uint32_t id) {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second.filter.get();
}

std::vector<const SetCatalog::SetEntry*> SetCatalog::Entries() const {
  std::vector<const SetEntry*> entries;
  entries.reserve(by_id_.size());
  for (const auto& [id, entry] : by_id_) entries.push_back(&entry);
  return entries;  // std::map iterates in id order
}

size_t SetCatalog::memory_bytes() const {
  size_t total = 0;
  for (const auto& [id, entry] : by_id_) total += entry.filter->memory_bytes();
  return total;
}

std::string SetCatalog::Serialize() const {
  ByteWriter writer;
  writer.PutU32(kCatalogMagic);
  writer.PutU8(kCatalogVersion);
  writer.PutU32(next_id_);
  writer.PutU32(static_cast<uint32_t>(by_id_.size()));
  for (const auto& [id, entry] : by_id_) {
    writer.PutU32(id);
    writer.PutU32(static_cast<uint32_t>(entry.name.size()));
    writer.PutBytes(entry.name.data(), entry.name.size());
    const std::string blob = FilterRegistry::Serialize(*entry.filter);
    writer.PutU32(static_cast<uint32_t>(blob.size()));
    writer.PutBytes(blob.data(), blob.size());
  }
  return writer.Take();
}

Status SetCatalog::Deserialize(std::string_view bytes,
                               const FilterRegistry& registry,
                               SetCatalog* out) {
  ByteReader reader(bytes);
  uint32_t magic = 0;
  uint8_t version = 0;
  uint32_t next_id = 0;
  uint32_t count = 0;
  if (!reader.GetU32(&magic) || magic != kCatalogMagic) {
    return Status::InvalidArgument("SetCatalog: bad catalog magic");
  }
  if (!reader.GetU8(&version)) {
    return Status::InvalidArgument("SetCatalog: truncated catalog envelope");
  }
  if (version != kCatalogVersion) {
    return Status::InvalidArgument(
        "SetCatalog: unsupported catalog version " + std::to_string(version) +
        " (supported: " + std::to_string(kCatalogVersion) +
        "); rebuild the catalog with this library version");
  }
  if (!reader.GetU32(&next_id) || !reader.GetU32(&count)) {
    return Status::InvalidArgument("SetCatalog: truncated catalog envelope");
  }
  // id_bound() sizes every SetIdBitmap the index hands out, so a forged
  // next_id is a memory-amplification bomb even with one valid record.
  if (next_id > kMaxSets) {
    return Status::InvalidArgument(
        "SetCatalog: id bound " + std::to_string(next_id) +
        " exceeds the catalog id-space limit");
  }
  // Count-bomb guard: every record needs at least its fixed fields, so a
  // crafted count the input cannot satisfy is rejected before any loop.
  if (count > kMaxSets || count > next_id ||
      count > reader.remaining() / kMinSetRecordBytes) {
    return Status::InvalidArgument(
        "SetCatalog: set count " + std::to_string(count) +
        " is impossible for a " + std::to_string(bytes.size()) +
        "-byte catalog blob");
  }
  SetCatalog catalog;
  uint32_t previous_id = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t id = 0;
    uint32_t name_length = 0;
    if (!reader.GetU32(&id) || !reader.GetU32(&name_length)) {
      return Status::InvalidArgument("SetCatalog: truncated set record " +
                                     std::to_string(i));
    }
    // Ids are written in strictly increasing order below next_id; anything
    // else is corruption (or a forged blob trying to alias ids).
    if (id >= next_id || (i > 0 && id <= previous_id)) {
      return Status::InvalidArgument("SetCatalog: set record " +
                                     std::to_string(i) +
                                     " carries out-of-order id " +
                                     std::to_string(id));
    }
    previous_id = id;
    if (name_length == 0 || name_length > kMaxNameBytes ||
        name_length > reader.remaining()) {
      return Status::InvalidArgument("SetCatalog: bad name in set record " +
                                     std::to_string(i));
    }
    std::string name(name_length, '\0');
    if (!reader.GetBytes(name.data(), name_length)) {
      return Status::InvalidArgument("SetCatalog: truncated set record " +
                                     std::to_string(i));
    }
    uint32_t blob_length = 0;
    if (!reader.GetU32(&blob_length) || blob_length > reader.remaining()) {
      return Status::InvalidArgument(
          "SetCatalog: truncated filter blob for set '" + name + "'");
    }
    std::string blob(blob_length, '\0');
    if (blob_length > 0 && !reader.GetBytes(blob.data(), blob_length)) {
      return Status::InvalidArgument(
          "SetCatalog: truncated filter blob for set '" + name + "'");
    }
    std::unique_ptr<MembershipFilter> filter;
    Status s = registry.Deserialize(blob, &filter);
    if (!s.ok()) {
      return Status::InvalidArgument("SetCatalog: set '" + name + "': " +
                                     s.ToString());
    }
    if (catalog.id_by_name_.find(name) != catalog.id_by_name_.end()) {
      return Status::InvalidArgument("SetCatalog: duplicate set name '" +
                                     name + "'");
    }
    SetEntry entry;
    entry.id = id;
    entry.name = name;
    entry.filter = std::move(filter);
    catalog.by_id_.emplace(id, std::move(entry));
    catalog.id_by_name_.emplace(std::move(name), id);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("SetCatalog: trailing bytes after the "
                                   "last set record");
  }
  catalog.next_id_ = next_id;
  *out = std::move(catalog);
  return Status::Ok();
}

}  // namespace shbf
