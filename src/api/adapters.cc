// Adapters binding every concrete filter to the unified SetQueryFilter
// interfaces, plus the built-in FilterRegistry entries.
//
// Each adapter is a thin wrapper: it owns the concrete filter by value,
// forwards the hot calls, and adds only what the interface needs (a name, an
// add counter, spec-derived construction, envelope-free serde). The concrete
// classes stay available for inlined hot paths; these adapters exist so
// registry-driven drivers (tests, benches, the CLI, future sharded front
// ends) can treat all fifteen schemes as one family.
//
// Factory derivations from FilterSpec are documented entry by entry in
// RegisterBuiltinFilters at the bottom of this file.

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/filter_registry.h"
#include "api/filter_spec.h"
#include "api/set_query_filter.h"
#include "baselines/blocked_bloom_filter.h"
#include "baselines/split_block_bloom_filter.h"
#include "baselines/bloom_filter.h"
#include "baselines/cm_sketch.h"
#include "baselines/counting_bloom_filter.h"
#include "baselines/cuckoo_filter.h"
#include "baselines/dynamic_count_filter.h"
#include "baselines/ibf.h"
#include "baselines/km_bloom_filter.h"
#include "baselines/one_mem_bf.h"
#include "baselines/spectral_bloom_filter.h"
#include "core/serde.h"
#include "shbf/blocked_shbf_membership.h"
#include "shbf/split_block_shbf_membership.h"
#include "shbf/counting_shbf_membership.h"
#include "shbf/generalized_shbf.h"
#include "shbf/scm_sketch.h"
#include "shbf/shbf_association.h"
#include "shbf/shbf_membership.h"
#include "shbf/shbf_multiplicity.h"

namespace shbf {
namespace {

// ------------------------------------------------------------------------
// Shared adapter plumbing
// ------------------------------------------------------------------------

/// Name + add-counter + by-value impl shared by most adapters. `Base` is the
/// interface being implemented, `Impl` the wrapped concrete filter.
template <typename Base, typename Impl>
class AdapterCore : public Base {
 public:
  AdapterCore(std::string name, Impl impl)
      : name_(std::move(name)), impl_(std::move(impl)) {}

  std::string_view name() const override { return name_; }
  size_t num_elements() const override { return adds_; }
  void Clear() override {
    impl_.Clear();
    adds_ = 0;
  }

  /// Direct access to the wrapped filter (inlined-hot-path escape hatch).
  const Impl& impl() const { return impl_; }

  /// Restores the interface-level add counter after deserialization.
  void RestoreAddCount(size_t adds) { adds_ = adds; }

 protected:
  /// Adapter payload for native-serde filters: the add counter (which only
  /// the adapter tracks) followed by the concrete filter's own blob.
  std::string WrapNative(const std::string& native_blob) const {
    ByteWriter writer;
    writer.PutU64(adds_);
    writer.PutBytes(native_blob.data(), native_blob.size());
    return writer.Take();
  }

  std::string name_;
  Impl impl_;
  size_t adds_ = 0;
};

/// Deserializer wrapper for filters with native FromBytes: payload is the
/// add counter followed by the concrete filter's own versioned blob.
template <typename Adapter, typename Impl>
FilterRegistry::Deserializer NativeDeserializer(std::string name) {
  return [name](std::string_view payload,
                std::unique_ptr<MembershipFilter>* out) -> Status {
    ByteReader reader(payload);
    uint64_t adds = 0;
    if (!reader.GetU64(&adds)) {
      return Status::InvalidArgument(name + ": truncated adapter payload");
    }
    std::optional<Impl> impl;
    Status s = Impl::FromBytes(payload.substr(8), &impl);
    if (!s.ok()) return s;
    auto adapter = std::make_unique<Adapter>(name, std::move(*impl));
    adapter->RestoreAddCount(adds);
    *out = std::move(adapter);
    return Status::Ok();
  };
}

// Length-prefixed key-list / key-count serde now lives in core/serde.h
// (serde::WriteKeyList & friends) so the dynamic-filter wrappers in
// src/engine/ share the exact wire format with the replay adapters here.
using serde::ReadKeyCountList;
using serde::ReadKeyList;
using serde::WriteKeyCountList;
using serde::WriteKeyList;

// ------------------------------------------------------------------------
// Membership adapters
// ------------------------------------------------------------------------

class BloomAdapter : public AdapterCore<MembershipFilter, BloomFilter> {
 public:
  using AdapterCore::AdapterCore;
  void Add(std::string_view key) override {
    impl_.Add(key);
    ++adds_;
  }
  bool Contains(std::string_view key) const override {
    return impl_.Contains(key);
  }
  bool ContainsWithStats(std::string_view key,
                         QueryStats* stats) const override {
    return impl_.ContainsWithStats(key, stats);
  }
  void ContainsBatch(const std::vector<std::string>& keys,
                     std::vector<uint8_t>* results) const override {
    impl_.ContainsBatch(keys, results);
  }
  BatchFastPath batch_fast_path() const override {
    return {BatchFastPath::Kind::kBloom, &impl_};
  }
  uint32_t capabilities() const override {
    return kIncrementalAdd | kMergeable;
  }
  Status MergeFrom(const MembershipFilter& other) override {
    const auto* peer = dynamic_cast<const BloomAdapter*>(&other);
    if (peer == nullptr) {
      return Status::FailedPrecondition(
          name_ + ": MergeFrom needs another " + name_ + " instance");
    }
    Status s = impl_.MergeFrom(peer->impl_);
    if (s.ok()) adds_ += peer->adds_;
    return s;
  }
  size_t num_elements() const override { return impl_.num_elements(); }
  size_t memory_bytes() const override {
    return impl_.bits().allocated_bytes();
  }
  std::string ToBytes() const override { return WrapNative(impl_.ToBytes()); }
};

class ShbfMAdapter : public AdapterCore<MembershipFilter, ShbfM> {
 public:
  using AdapterCore::AdapterCore;
  void Add(std::string_view key) override {
    impl_.Add(key);
    ++adds_;
  }
  bool Contains(std::string_view key) const override {
    return impl_.Contains(key);
  }
  bool ContainsWithStats(std::string_view key,
                         QueryStats* stats) const override {
    return impl_.ContainsWithStats(key, stats);
  }
  void ContainsBatch(const std::vector<std::string>& keys,
                     std::vector<uint8_t>* results) const override {
    impl_.ContainsBatch(keys, results);
  }
  BatchFastPath batch_fast_path() const override {
    return {BatchFastPath::Kind::kShbfM, &impl_};
  }
  uint32_t capabilities() const override {
    return kIncrementalAdd | kMergeable;
  }
  Status MergeFrom(const MembershipFilter& other) override {
    const auto* peer = dynamic_cast<const ShbfMAdapter*>(&other);
    if (peer == nullptr) {
      return Status::FailedPrecondition(
          name_ + ": MergeFrom needs another " + name_ + " instance");
    }
    Status s = impl_.MergeFrom(peer->impl_);
    if (s.ok()) adds_ += peer->adds_;
    return s;
  }
  size_t num_elements() const override { return impl_.num_elements(); }
  size_t memory_bytes() const override {
    return impl_.bits().allocated_bytes();
  }
  std::string ToBytes() const override { return WrapNative(impl_.ToBytes()); }
};

class BlockedBloomAdapter
    : public AdapterCore<MembershipFilter, BlockedBloomFilter> {
 public:
  using AdapterCore::AdapterCore;
  void Add(std::string_view key) override {
    impl_.Add(key);
    ++adds_;
  }
  bool Contains(std::string_view key) const override {
    return impl_.Contains(key);
  }
  bool ContainsWithStats(std::string_view key,
                         QueryStats* stats) const override {
    return impl_.ContainsWithStats(key, stats);
  }
  void ContainsBatch(const std::vector<std::string>& keys,
                     std::vector<uint8_t>* results) const override {
    impl_.ContainsBatch(keys, results);
  }
  using MembershipFilter::ContainsBatch;  // keep the view overload visible
  BatchFastPath batch_fast_path() const override {
    return {BatchFastPath::Kind::kBlockedBloom, &impl_};
  }
  uint32_t capabilities() const override {
    return kIncrementalAdd | kMergeable;
  }
  Status MergeFrom(const MembershipFilter& other) override {
    const auto* peer = dynamic_cast<const BlockedBloomAdapter*>(&other);
    if (peer == nullptr) {
      return Status::FailedPrecondition(
          name_ + ": MergeFrom needs another " + name_ + " instance");
    }
    Status s = impl_.MergeFrom(peer->impl_);
    if (s.ok()) adds_ += peer->adds_;
    return s;
  }
  size_t num_elements() const override { return impl_.num_elements(); }
  size_t memory_bytes() const override {
    return impl_.bits().allocated_bytes();
  }
  std::string ToBytes() const override { return WrapNative(impl_.ToBytes()); }
};

class BlockedShbfMAdapter
    : public AdapterCore<MembershipFilter, BlockedShbfM> {
 public:
  using AdapterCore::AdapterCore;
  void Add(std::string_view key) override {
    impl_.Add(key);
    ++adds_;
  }
  bool Contains(std::string_view key) const override {
    return impl_.Contains(key);
  }
  bool ContainsWithStats(std::string_view key,
                         QueryStats* stats) const override {
    return impl_.ContainsWithStats(key, stats);
  }
  void ContainsBatch(const std::vector<std::string>& keys,
                     std::vector<uint8_t>* results) const override {
    impl_.ContainsBatch(keys, results);
  }
  using MembershipFilter::ContainsBatch;  // keep the view overload visible
  BatchFastPath batch_fast_path() const override {
    return {BatchFastPath::Kind::kBlockedShbfM, &impl_};
  }
  uint32_t capabilities() const override {
    return kIncrementalAdd | kMergeable;
  }
  Status MergeFrom(const MembershipFilter& other) override {
    const auto* peer = dynamic_cast<const BlockedShbfMAdapter*>(&other);
    if (peer == nullptr) {
      return Status::FailedPrecondition(
          name_ + ": MergeFrom needs another " + name_ + " instance");
    }
    Status s = impl_.MergeFrom(peer->impl_);
    if (s.ok()) adds_ += peer->adds_;
    return s;
  }
  size_t num_elements() const override { return impl_.num_elements(); }
  size_t memory_bytes() const override {
    return impl_.bits().allocated_bytes();
  }
  std::string ToBytes() const override { return WrapNative(impl_.ToBytes()); }
};

class SplitBlockBloomAdapter
    : public AdapterCore<MembershipFilter, SplitBlockBloomFilter> {
 public:
  using AdapterCore::AdapterCore;
  void Add(std::string_view key) override {
    impl_.Add(key);
    ++adds_;
  }
  bool Contains(std::string_view key) const override {
    return impl_.Contains(key);
  }
  bool ContainsWithStats(std::string_view key,
                         QueryStats* stats) const override {
    return impl_.ContainsWithStats(key, stats);
  }
  void ContainsBatch(const std::vector<std::string>& keys,
                     std::vector<uint8_t>* results) const override {
    impl_.ContainsBatch(keys, results);
  }
  using MembershipFilter::ContainsBatch;  // keep the view overload visible
  BatchFastPath batch_fast_path() const override {
    return {BatchFastPath::Kind::kSplitBlockBloom, &impl_};
  }
  uint32_t capabilities() const override {
    return kIncrementalAdd | kMergeable;
  }
  Status MergeFrom(const MembershipFilter& other) override {
    const auto* peer = dynamic_cast<const SplitBlockBloomAdapter*>(&other);
    if (peer == nullptr) {
      return Status::FailedPrecondition(
          name_ + ": MergeFrom needs another " + name_ + " instance");
    }
    Status s = impl_.MergeFrom(peer->impl_);
    if (s.ok()) adds_ += peer->adds_;
    return s;
  }
  size_t num_elements() const override { return impl_.num_elements(); }
  size_t memory_bytes() const override {
    return impl_.bits().allocated_bytes();
  }
  std::string ToBytes() const override { return WrapNative(impl_.ToBytes()); }
};

class SplitBlockShbfMAdapter
    : public AdapterCore<MembershipFilter, SplitBlockShbfM> {
 public:
  using AdapterCore::AdapterCore;
  void Add(std::string_view key) override {
    impl_.Add(key);
    ++adds_;
  }
  bool Contains(std::string_view key) const override {
    return impl_.Contains(key);
  }
  bool ContainsWithStats(std::string_view key,
                         QueryStats* stats) const override {
    return impl_.ContainsWithStats(key, stats);
  }
  void ContainsBatch(const std::vector<std::string>& keys,
                     std::vector<uint8_t>* results) const override {
    impl_.ContainsBatch(keys, results);
  }
  using MembershipFilter::ContainsBatch;  // keep the view overload visible
  BatchFastPath batch_fast_path() const override {
    return {BatchFastPath::Kind::kSplitBlockShbfM, &impl_};
  }
  uint32_t capabilities() const override {
    return kIncrementalAdd | kMergeable;
  }
  Status MergeFrom(const MembershipFilter& other) override {
    const auto* peer = dynamic_cast<const SplitBlockShbfMAdapter*>(&other);
    if (peer == nullptr) {
      return Status::FailedPrecondition(
          name_ + ": MergeFrom needs another " + name_ + " instance");
    }
    Status s = impl_.MergeFrom(peer->impl_);
    if (s.ok()) adds_ += peer->adds_;
    return s;
  }
  size_t num_elements() const override { return impl_.num_elements(); }
  size_t memory_bytes() const override {
    return impl_.bits().allocated_bytes();
  }
  std::string ToBytes() const override { return WrapNative(impl_.ToBytes()); }
};

class KmBloomAdapter : public AdapterCore<MembershipFilter, KmBloomFilter> {
 public:
  using AdapterCore::AdapterCore;
  void Add(std::string_view key) override {
    impl_.Add(key);
    ++adds_;
  }
  bool Contains(std::string_view key) const override {
    return impl_.Contains(key);
  }
  bool ContainsWithStats(std::string_view key,
                         QueryStats* stats) const override {
    return impl_.ContainsWithStats(key, stats);
  }
  size_t memory_bytes() const override { return impl_.num_bits() / 8; }
  std::string ToBytes() const override { return WrapNative(impl_.ToBytes()); }
};

class OneMemBfAdapter
    : public AdapterCore<MembershipFilter, OneMemBloomFilter> {
 public:
  using AdapterCore::AdapterCore;
  void Add(std::string_view key) override {
    impl_.Add(key);
    ++adds_;
  }
  bool Contains(std::string_view key) const override {
    return impl_.Contains(key);
  }
  bool ContainsWithStats(std::string_view key,
                         QueryStats* stats) const override {
    return impl_.ContainsWithStats(key, stats);
  }
  size_t memory_bytes() const override { return impl_.num_bits() / 8; }
  std::string ToBytes() const override { return WrapNative(impl_.ToBytes()); }
};

class CountingBloomAdapter
    : public AdapterCore<MembershipFilter, CountingBloomFilter> {
 public:
  using AdapterCore::AdapterCore;
  void Add(std::string_view key) override {
    impl_.Insert(key);
    ++adds_;
  }
  bool Contains(std::string_view key) const override {
    return impl_.Contains(key);
  }
  bool ContainsWithStats(std::string_view key,
                         QueryStats* stats) const override {
    return impl_.ContainsWithStats(key, stats);
  }
  Status Remove(std::string_view key) override {
    // Contains(key) == false proves the key absent (no false negatives), so
    // the decrement below can never underflow the concrete class's CHECK.
    if (!impl_.Contains(key)) {
      return Status::NotFound(name_ + ": Remove of an absent key");
    }
    impl_.Delete(key);
    if (adds_ > 0) --adds_;
    return Status::Ok();
  }
  uint32_t capabilities() const override { return kIncrementalAdd | kRemove; }
  size_t memory_bytes() const override {
    return impl_.counters().num_counters() *
           impl_.counters().bits_per_counter() / 8;
  }
  std::string ToBytes() const override { return WrapNative(impl_.ToBytes()); }
};

class CuckooAdapter : public AdapterCore<MembershipFilter, CuckooFilter> {
 public:
  using AdapterCore::AdapterCore;
  void Add(std::string_view key) override {
    // One fingerprint copy per Add (multiset semantics). This is what makes
    // Remove safe: if key B aliases key A's fingerprint, B's own Add stored
    // its own copy, so Remove(A) strips one copy and B stays covered.
    // (A skip-if-Contains "set" shortcut would break exactly there — an
    // aliased Add would store nothing, and deleting the alias's copy would
    // turn B into a false negative.) Duplicate copies of one key are
    // bounded by its two buckets; a failed Insert bumps the key's counter
    // in the exact overfull side table the queries consult — degraded
    // capacity, possibly a redundant copy (Insert may have placed the
    // fingerprint while kicking another to the stash), never a lost key,
    // and O(1) memory per distinct hot key no matter how often it re-adds.
    // A "failed" Insert may still have stored the copy: the kick loop
    // places the new fingerprint and parks the last displaced one in the
    // victim stash, which num_items() counts. Only a rejected insert —
    // stash already occupied, nothing stored — goes to the side table.
    const size_t items_before = impl_.num_items();
    if (!impl_.Insert(key) && impl_.num_items() == items_before) {
      auto [it, inserted] = overfull_.emplace(key, 1);
      if (!inserted) ++it->second;
      ++overfull_total_;
    }
    ++adds_;
  }
  bool Contains(std::string_view key) const override {
    if (impl_.Contains(key)) return true;
    return overfull_.find(key) != overfull_.end();
  }
  bool ContainsWithStats(std::string_view key,
                         QueryStats* stats) const override {
    if (impl_.ContainsWithStats(key, stats)) return true;
    return overfull_.find(key) != overfull_.end();
  }
  Status Remove(std::string_view key) override {
    // The exact side table first: removing from it can never disturb other
    // keys, and it frees degraded capacity.
    auto it = overfull_.find(key);
    if (it != overfull_.end()) {
      if (--it->second == 0) overfull_.erase(it);
      --overfull_total_;
      if (adds_ > 0) --adds_;
      return Status::Ok();
    }
    if (!impl_.Delete(key)) {
      return Status::NotFound(name_ + ": Remove of an absent key");
    }
    if (adds_ > 0) --adds_;
    return Status::Ok();
  }
  uint32_t capabilities() const override { return kIncrementalAdd | kRemove; }
  // Stored fingerprints + overfull copies, which survive deserialization
  // (unlike the adapter add counter).
  size_t num_elements() const override {
    return impl_.num_items() + overfull_total_;
  }
  void Clear() override {
    impl_.Clear();
    overfull_.clear();
    overfull_total_ = 0;
    adds_ = 0;
  }
  size_t memory_bytes() const override { return impl_.memory_bits() / 8; }
  std::string ToBytes() const override {
    ByteWriter writer;
    std::string native = impl_.ToBytes();
    writer.PutU64(native.size());
    writer.PutBytes(native.data(), native.size());
    std::vector<std::pair<std::string, uint64_t>> entries(overfull_.begin(),
                                                          overfull_.end());
    WriteKeyCountList(&writer, entries);
    return writer.Take();
  }

  void RestoreOverfull(std::vector<std::pair<std::string, uint64_t>> entries) {
    overfull_.clear();
    overfull_total_ = 0;
    for (auto& [key, count] : entries) {
      overfull_total_ += count;
      overfull_.emplace(std::move(key), count);
    }
  }

 private:
  std::map<std::string, uint64_t, std::less<>> overfull_;
  size_t overfull_total_ = 0;
};

class CountingShbfMAdapter
    : public AdapterCore<MembershipFilter, CountingShbfM> {
 public:
  using AdapterCore::AdapterCore;
  void Add(std::string_view key) override {
    impl_.Insert(key);
    ++adds_;
  }
  bool Contains(std::string_view key) const override {
    return impl_.Contains(key);
  }
  bool ContainsWithStats(std::string_view key,
                         QueryStats* stats) const override {
    return impl_.ContainsWithStats(key, stats);
  }
  Status Remove(std::string_view key) override {
    // B is the bitwise projection of C, so Contains(key) == true implies
    // every pair counter of `key` is nonzero — Delete cannot underflow.
    if (!impl_.Contains(key)) {
      return Status::NotFound(name_ + ": Remove of an absent key");
    }
    impl_.Delete(key);
    if (adds_ > 0) --adds_;
    return Status::Ok();
  }
  uint32_t capabilities() const override { return kIncrementalAdd | kRemove; }
  size_t memory_bytes() const override {
    return impl_.num_bits() / 8 + impl_.counters().num_counters() *
                                      impl_.counters().bits_per_counter() / 8;
  }
  std::string ToBytes() const override { return WrapNative(impl_.ToBytes()); }
};

class GeneralizedShbfAdapter
    : public AdapterCore<MembershipFilter, GeneralizedShbfM> {
 public:
  using AdapterCore::AdapterCore;
  void Add(std::string_view key) override {
    impl_.Add(key);
    ++adds_;
  }
  bool Contains(std::string_view key) const override {
    return impl_.Contains(key);
  }
  bool ContainsWithStats(std::string_view key,
                         QueryStats* stats) const override {
    return impl_.ContainsWithStats(key, stats);
  }
  size_t memory_bytes() const override { return impl_.num_bits() / 8; }
  std::string ToBytes() const override { return WrapNative(impl_.ToBytes()); }
};

// ------------------------------------------------------------------------
// Multiplicity adapters
// ------------------------------------------------------------------------

class SpectralAdapter
    : public AdapterCore<MultiplicityFilter, SpectralBloomFilter> {
 public:
  using AdapterCore::AdapterCore;
  void Add(std::string_view key) override {
    impl_.Insert(key);
    ++adds_;
  }
  uint64_t QueryCount(std::string_view key) const override {
    return impl_.QueryCount(key);
  }
  bool ContainsWithStats(std::string_view key,
                         QueryStats* stats) const override {
    return impl_.QueryCountWithStats(key, stats) > 0;
  }
  Status Remove(std::string_view key) override {
    // The registry always builds the kIncrementAll policy (the delete-
    // capable one); QueryCount never underestimates, so 0 proves absence.
    if (impl_.QueryCount(key) == 0) {
      return Status::NotFound(name_ + ": Remove of an absent key");
    }
    impl_.Delete(key);
    if (adds_ > 0) --adds_;
    return Status::Ok();
  }
  uint32_t capabilities() const override { return kIncrementalAdd | kRemove; }
  size_t memory_bytes() const override { return impl_.memory_bits() / 8; }
  std::string ToBytes() const override { return WrapNative(impl_.ToBytes()); }
};

class CmSketchAdapter : public AdapterCore<MultiplicityFilter, CmSketch> {
 public:
  using AdapterCore::AdapterCore;
  void Add(std::string_view key) override {
    impl_.Insert(key);
    ++adds_;
  }
  uint64_t QueryCount(std::string_view key) const override {
    return impl_.QueryCount(key);
  }
  bool ContainsWithStats(std::string_view key,
                         QueryStats* stats) const override {
    return impl_.QueryCountWithStats(key, stats) > 0;
  }
  size_t memory_bytes() const override { return impl_.memory_bits() / 8; }
  std::string ToBytes() const override { return WrapNative(impl_.ToBytes()); }
};

class ScmSketchAdapter : public AdapterCore<MultiplicityFilter, ScmSketch> {
 public:
  using AdapterCore::AdapterCore;
  void Add(std::string_view key) override {
    impl_.Insert(key);
    ++adds_;
  }
  uint64_t QueryCount(std::string_view key) const override {
    return impl_.QueryCount(key);
  }
  bool ContainsWithStats(std::string_view key,
                         QueryStats* stats) const override {
    return impl_.QueryCountWithStats(key, stats) > 0;
  }
  size_t memory_bytes() const override { return impl_.memory_bits() / 8; }
  std::string ToBytes() const override { return WrapNative(impl_.ToBytes()); }
};

class DynamicCountAdapter
    : public AdapterCore<MultiplicityFilter, DynamicCountFilter> {
 public:
  using AdapterCore::AdapterCore;
  void Add(std::string_view key) override {
    impl_.Insert(key);
    ++adds_;
  }
  uint64_t QueryCount(std::string_view key) const override {
    return impl_.QueryCount(key);
  }
  bool ContainsWithStats(std::string_view key,
                         QueryStats* stats) const override {
    return impl_.QueryCountWithStats(key, stats) > 0;
  }
  Status Remove(std::string_view key) override {
    // QueryCount never underestimates, so 0 proves absence and the
    // decrement cannot underflow the CHECK.
    if (impl_.QueryCount(key) == 0) {
      return Status::NotFound(name_ + ": Remove of an absent key");
    }
    impl_.Delete(key);
    if (adds_ > 0) --adds_;
    return Status::Ok();
  }
  uint32_t capabilities() const override { return kIncrementalAdd | kRemove; }
  size_t memory_bytes() const override { return impl_.memory_bits() / 8; }
  std::string ToBytes() const override { return WrapNative(impl_.ToBytes()); }
};

/// CountingShbfX (§5.3, table-backed): incremental multiplicity updates.
/// Serde is replay-based: the structure's state is a deterministic function
/// of (spec, exact key→count table), so the payload is the spec plus the
/// table and deserialization re-inserts every occurrence.
class CountingShbfXAdapter : public MultiplicityFilter {
 public:
  CountingShbfXAdapter(std::string name, FilterSpec spec,
                       CountingShbfX::Params params)
      : name_(std::move(name)),
        spec_(spec),
        params_(params),
        impl_(params) {}

  std::string_view name() const override { return name_; }
  size_t num_elements() const override { return adds_; }
  void Add(std::string_view key) override {
    // Saturate at max_count instead of tripping the concrete class's CHECK:
    // through the uniform interface a caller cannot know every scheme's cap,
    // and the library's counting structures already saturate rather than
    // abort (PackedCounterArray). Counts at the cap stop growing, mirroring
    // "max_count is the largest representable multiplicity".
    if (impl_.ExactCount(key) < params_.filter.max_count) impl_.Insert(key);
    ++adds_;
  }
  uint64_t QueryCount(std::string_view key) const override {
    return impl_.QueryCount(key);
  }
  Status Remove(std::string_view key) override {
    // The exact table (§5.3.2) makes absence authoritative here — no
    // false-positive removal hazard at all in table-backed mode.
    if (impl_.ExactCount(key) == 0) {
      return Status::NotFound(name_ + ": Remove of an absent key");
    }
    impl_.Delete(key);
    if (adds_ > 0) --adds_;
    return Status::Ok();
  }
  uint32_t capabilities() const override { return kIncrementalAdd | kRemove; }
  void Clear() override {
    impl_.Clear();
    adds_ = 0;
  }
  size_t memory_bytes() const override {
    // Bit array + mirror counters; the exact table is off-structure in the
    // paper's architecture (§5.3.2) and not counted.
    return spec_.num_cells * (1 + spec_.counter_bits) / 8;
  }
  std::string ToBytes() const override {
    ByteWriter writer;
    spec_serde::WriteSpec(&writer, spec_);
    std::vector<std::pair<std::string, uint64_t>> entries;
    impl_.ForEachExactCount([&entries](std::string_view key, uint64_t count) {
      entries.emplace_back(std::string(key), count);
    });
    WriteKeyCountList(&writer, entries);
    return writer.Take();
  }

  const CountingShbfX& impl() const { return impl_; }
  CountingShbfX& impl() { return impl_; }

 private:
  std::string name_;
  FilterSpec spec_;
  CountingShbfX::Params params_;
  CountingShbfX impl_;
  size_t adds_ = 0;
};

/// ShbfX (§5): bulk-built — Add buffers the occurrence and the filter is
/// rebuilt lazily on the next query.
class ShbfXLazyAdapter : public MultiplicityFilter {
 public:
  ShbfXLazyAdapter(std::string name, FilterSpec spec, ShbfXParams params)
      : name_(std::move(name)), spec_(spec), params_(params), impl_(params) {}

  std::string_view name() const override { return name_; }
  size_t num_elements() const override { return multiset_.size(); }
  bool IncrementalAdd() const override { return false; }

  void Add(std::string_view key) override {
    multiset_.emplace_back(key);
    dirty_ = true;
  }
  uint64_t QueryCount(std::string_view key) const override {
    EnsureBuilt();
    return impl_.QueryCount(key);
  }
  BatchFastPath batch_fast_path() const override {
    EnsureBuilt();  // the engine resolves against the finished build
    return {BatchFastPath::Kind::kShbfX, &impl_};
  }
  void PrepareForConstReads() override { EnsureBuilt(); }
  Status Remove(std::string_view key) override {
    // The buffered multiset is exact, so removal is exact too (no counting
    // hazard) — it just marks the filter for a lazy rebuild, the same cost
    // an Add already implies for this bulk-built structure. Swap-with-back
    // erase: the rebuild tallies the multiset order-independently, and an
    // O(n) shift per queued remove would dominate a dynamic-wrapper fold.
    auto it = std::find(multiset_.begin(), multiset_.end(), key);
    if (it == multiset_.end()) {
      return Status::NotFound(name_ + ": Remove of an absent key");
    }
    *it = std::move(multiset_.back());
    multiset_.pop_back();
    dirty_ = true;
    return Status::Ok();
  }
  uint32_t capabilities() const override { return kRemove; }
  void Clear() override {
    multiset_.clear();
    impl_ = ShbfX(params_);
    dirty_ = false;
  }
  size_t memory_bytes() const override { return impl_.num_bits() / 8; }
  std::string ToBytes() const override {
    ByteWriter writer;
    spec_serde::WriteSpec(&writer, spec_);
    WriteKeyList(&writer, multiset_);
    return writer.Take();
  }

  void SetKeys(std::vector<std::string> multiset) {
    multiset_ = std::move(multiset);
    dirty_ = true;
  }

 private:
  void EnsureBuilt() const {
    if (!dirty_) return;
    impl_ = ShbfX(params_);
    // Tally here instead of ShbfX::Build so multiplicities past max_count
    // saturate at the cap (Build CHECK-fails on them; through the uniform
    // interface a caller cannot know the cap).
    std::unordered_map<std::string, uint32_t> tallies;
    for (const auto& key : multiset_) ++tallies[key];
    for (const auto& [key, count] : tallies) {
      impl_.InsertWithCount(key, std::min(count, params_.max_count));
    }
    dirty_ = false;
  }

  std::string name_;
  FilterSpec spec_;
  ShbfXParams params_;
  mutable ShbfX impl_;
  mutable bool dirty_ = false;
  std::vector<std::string> multiset_;
};

// ------------------------------------------------------------------------
// Association adapters
// ------------------------------------------------------------------------

/// ShbfA (§4): bulk-built over (S1, S2); Add buffers and rebuilds lazily.
class ShbfALazyAdapter : public AssociationFilter {
 public:
  ShbfALazyAdapter(std::string name, FilterSpec spec, ShbfAParams params)
      : name_(std::move(name)), spec_(spec), params_(params), impl_(params) {}

  std::string_view name() const override { return name_; }
  size_t num_elements() const override { return s1_.size() + s2_.size(); }
  bool IncrementalAdd() const override { return false; }

  void AddToS1(std::string_view key) override {
    s1_.emplace_back(key);
    dirty_ = true;
  }
  void AddToS2(std::string_view key) override {
    s2_.emplace_back(key);
    dirty_ = true;
  }
  AssociationOutcome Query(std::string_view key) const override {
    EnsureBuilt();
    return impl_.Query(key);
  }
  AssociationOutcome QueryWithStats(std::string_view key,
                                    QueryStats* stats) const override {
    EnsureBuilt();
    return impl_.QueryWithStats(key, stats);
  }
  BatchFastPath batch_fast_path() const override {
    EnsureBuilt();  // the engine resolves against the finished build
    return {BatchFastPath::Kind::kShbfA, &impl_};
  }
  void PrepareForConstReads() override { EnsureBuilt(); }
  Status Remove(std::string_view key) override {
    // Membership view is S1 ∪ S2, so removal searches both buffered sets
    // (S1 first, matching Add == AddToS1). Exact, like ShbfXLazyAdapter;
    // swap-with-back erase because Build is order-independent.
    for (auto* side : {&s1_, &s2_}) {
      auto it = std::find(side->begin(), side->end(), key);
      if (it != side->end()) {
        *it = std::move(side->back());
        side->pop_back();
        dirty_ = true;
        return Status::Ok();
      }
    }
    return Status::NotFound(name_ + ": Remove of an absent key");
  }
  uint32_t capabilities() const override { return kRemove; }
  void Clear() override {
    s1_.clear();
    s2_.clear();
    impl_ = ShbfA(params_);
    dirty_ = false;
  }
  size_t memory_bytes() const override { return impl_.num_bits() / 8; }
  std::string ToBytes() const override {
    ByteWriter writer;
    spec_serde::WriteSpec(&writer, spec_);
    WriteKeyList(&writer, s1_);
    WriteKeyList(&writer, s2_);
    return writer.Take();
  }

  void SetKeys(std::vector<std::string> s1, std::vector<std::string> s2) {
    s1_ = std::move(s1);
    s2_ = std::move(s2);
    dirty_ = true;
  }

 private:
  void EnsureBuilt() const {
    if (!dirty_) return;
    impl_ = ShbfA(params_);
    impl_.Build(s1_, s2_);
    dirty_ = false;
  }

  std::string name_;
  FilterSpec spec_;
  ShbfAParams params_;
  mutable ShbfA impl_;
  mutable bool dirty_ = false;
  std::vector<std::string> s1_;
  std::vector<std::string> s2_;
};

/// CountingShbfA (§4.4): incremental association updates. Replay serde, as
/// the state is a deterministic function of (spec, S1, S2).
class CountingShbfAAdapter : public AssociationFilter {
 public:
  CountingShbfAAdapter(std::string name, FilterSpec spec,
                       CountingShbfA::Params params)
      : name_(std::move(name)),
        spec_(spec),
        params_(params),
        impl_(params) {}

  std::string_view name() const override { return name_; }
  size_t num_elements() const override {
    return impl_.size_s1() + impl_.size_s2();
  }
  void AddToS1(std::string_view key) override { impl_.InsertS1(key); }
  void AddToS2(std::string_view key) override { impl_.InsertS2(key); }
  AssociationOutcome Query(std::string_view key) const override {
    return impl_.Query(key);
  }
  AssociationOutcome QueryWithStats(std::string_view key,
                                    QueryStats* stats) const override {
    return impl_.QueryWithStats(key, stats);
  }
  Status Remove(std::string_view key) override {
    // The exact side tables T1/T2 make absence authoritative; S1 is
    // preferred to mirror the membership view's Add == AddToS1.
    if (impl_.InS1(key)) {
      impl_.DeleteS1(key);
      return Status::Ok();
    }
    if (impl_.InS2(key)) {
      impl_.DeleteS2(key);
      return Status::Ok();
    }
    return Status::NotFound(name_ + ": Remove of an absent key");
  }
  uint32_t capabilities() const override { return kIncrementalAdd | kRemove; }
  void Clear() override { impl_.Clear(); }
  size_t memory_bytes() const override {
    return spec_.num_cells * (1 + spec_.counter_bits) / 8;
  }
  std::string ToBytes() const override {
    ByteWriter writer;
    spec_serde::WriteSpec(&writer, spec_);
    std::vector<std::string> s1;
    std::vector<std::string> s2;
    impl_.ForEachS1([&s1](std::string_view key) { s1.emplace_back(key); });
    impl_.ForEachS2([&s2](std::string_view key) { s2.emplace_back(key); });
    WriteKeyList(&writer, s1);
    WriteKeyList(&writer, s2);
    return writer.Take();
  }

  const CountingShbfA& impl() const { return impl_; }
  CountingShbfA& impl() { return impl_; }

 private:
  std::string name_;
  FilterSpec spec_;
  CountingShbfA::Params params_;
  CountingShbfA impl_;
};

/// iBF (§4.5): one Bloom filter per set. Serde concatenates the two native
/// Bloom blobs.
class IbfAdapter : public AssociationFilter {
 public:
  IbfAdapter(std::string name, IndividualBloomFilters impl)
      : name_(std::move(name)), impl_(std::move(impl)) {}

  std::string_view name() const override { return name_; }
  size_t num_elements() const override { return adds_; }
  void AddToS1(std::string_view key) override {
    impl_.AddToS1(key);
    ++adds_;
  }
  void AddToS2(std::string_view key) override {
    impl_.AddToS2(key);
    ++adds_;
  }
  AssociationOutcome Query(std::string_view key) const override {
    return impl_.Query(key);
  }
  AssociationOutcome QueryWithStats(std::string_view key,
                                    QueryStats* stats) const override {
    return impl_.QueryWithStats(key, stats);
  }
  bool Contains(std::string_view key) const override {
    // iBF's Query never reports kNotFound (a (0,0) pattern is mapped to
    // kUnknown because it breaks the e ∈ S1 ∪ S2 promise), so union
    // membership must consult the two filters directly.
    return impl_.filter1().Contains(key) || impl_.filter2().Contains(key);
  }
  void Clear() override {
    impl_.Clear();
    adds_ = 0;
  }
  size_t memory_bytes() const override { return impl_.total_bits() / 8; }
  std::string ToBytes() const override {
    ByteWriter writer;
    writer.PutU64(adds_);
    std::string blob1 = impl_.filter1().ToBytes();
    std::string blob2 = impl_.filter2().ToBytes();
    writer.PutU64(blob1.size());
    writer.PutBytes(blob1.data(), blob1.size());
    writer.PutBytes(blob2.data(), blob2.size());
    return writer.Take();
  }

  void RestoreAddCount(size_t adds) { adds_ = adds; }

  const IndividualBloomFilters& impl() const { return impl_; }

 private:
  std::string name_;
  IndividualBloomFilters impl_;
  size_t adds_ = 0;
};

// ------------------------------------------------------------------------
// Spec → Params derivations + registration
// ------------------------------------------------------------------------

uint32_t RoundUpToMultiple(uint32_t value, uint32_t divisor) {
  uint32_t remainder = value % divisor;
  return remainder == 0 ? value : value + divisor - remainder;
}

template <typename Adapter, typename Params>
Status MakeAdapter(const std::string& name, const Params& params,
                   std::unique_ptr<MembershipFilter>* out) {
  Status valid = params.Validate();
  if (!valid.ok()) return valid;
  using Impl = decltype(std::declval<Adapter>().impl());
  *out = std::make_unique<Adapter>(
      name, std::remove_cvref_t<Impl>(params));
  return Status::Ok();
}

// ------------------------------------------------------------------------
// Mapped-image hooks (flat zero-copy persistence; docs/persistence.md)
// ------------------------------------------------------------------------

/// Saver body shared by the single-bit-array membership filters: unwraps
/// the adapter, fills the geometry record from the live impl's getters via
/// `fill`, and borrows the bit payload as the image's one region.
template <typename Adapter, typename FillGeometry>
Status SaveBitArrayImage(const char* name, const MembershipFilter& filter,
                         storage::ImageHeader* header,
                         std::vector<storage::RegionPayload>* payloads,
                         FillGeometry fill) {
  const auto* adapter = dynamic_cast<const Adapter*>(&filter);
  if (adapter == nullptr) {
    return Status::FailedPrecondition(
        std::string(name) +
        ": mapped image needs an unwrapped instance (engine wrappers have no "
        "flat layout)");
  }
  const auto& impl = adapter->impl();
  storage::ImageGeometry& g = header->geometry;
  g.num_bits = impl.num_bits();
  g.num_hashes = impl.num_hashes();
  g.hash_algorithm = static_cast<uint8_t>(impl.hash_algorithm());
  g.seed = impl.seed();
  g.num_elements = adapter->num_elements();
  g.array_total_bits = impl.bits().total_bits();
  fill(impl, &g);
  payloads->push_back({impl.bits().data(), impl.bits().PayloadBytes()});
  return Status::Ok();
}

/// Opener-side geometry-vs-region cross-checks shared by the single-region
/// filters. Everything here is a Status, never a CHECK: the values come off
/// disk and must not be able to crash the process. Callers run the Params
/// Validate() FIRST so every field below is already range-sane.
Status CheckSingleRegion(const storage::ImageHeader& header,
                         const std::vector<storage::MappedRegionView>& regions,
                         uint64_t expected_slack) {
  const storage::ImageGeometry& g = header.geometry;
  if (regions.size() != 1) {
    return Status::InvalidArgument(
        "field region_count: expected 1 region, image carries " +
        std::to_string(regions.size()));
  }
  if (g.array_total_bits != g.num_bits + expected_slack) {
    return Status::InvalidArgument(
        "field array_total_bits: " + std::to_string(g.array_total_bits) +
        " != num_bits + slack = " +
        std::to_string(g.num_bits + expected_slack));
  }
  const uint64_t want_bytes = (g.array_total_bits + 7) / 8;
  if (regions[0].bytes != want_bytes) {
    return Status::InvalidArgument(
        "field region[0].bytes: " + std::to_string(regions[0].bytes) +
        " != bit payload bytes " + std::to_string(want_bytes));
  }
  return Status::Ok();
}

/// Rejects hash ids this build doesn't know (the enum is open on disk).
Status CheckHashId(uint8_t hash_algorithm) {
  if (hash_algorithm > 3) {
    return Status::InvalidArgument("field hash_algorithm: unknown hash id " +
                                   std::to_string(hash_algorithm));
  }
  return Status::Ok();
}

/// Opener body: params already Validate()d, geometry already cross-checked,
/// so the Impl view constructor's CHECKs cannot fire. Builds the adapter
/// over a BitArray::View of the mapped region — zero copies.
template <typename Adapter, typename Impl, typename Params>
Status OpenBitArrayImage(const char* name, const Params& params,
                         const storage::ImageHeader& header,
                         const std::vector<storage::MappedRegionView>& regions,
                         uint64_t expected_slack,
                         std::unique_ptr<MembershipFilter>* out) {
  const storage::ImageGeometry& g = header.geometry;
  BitArray bits = BitArray::View(regions[0].data,
                                 static_cast<size_t>(g.num_bits),
                                 static_cast<size_t>(expected_slack));
  auto adapter = std::make_unique<Adapter>(
      name, Impl(params, std::move(bits),
                 static_cast<size_t>(g.num_elements)));
  adapter->RestoreAddCount(static_cast<size_t>(g.num_elements));
  *out = std::move(adapter);
  return Status::Ok();
}

Status RegisterAll(FilterRegistry* r) {
  Status s;

  // --- membership ------------------------------------------------------
  // bloom: num_cells bits, num_hashes probes.
  s = r->Register(
      {.name = "bloom",
       .family = FilterFamily::kMembership,
       .description = "standard Bloom filter (Bloom 1970; paper §2.1, Eq 8)",
       .capabilities = kIncrementalAdd | kMergeable,
       .factory =
           [](const FilterSpec& spec, std::unique_ptr<MembershipFilter>* out) {
             return MakeAdapter<BloomAdapter>(
                 "bloom",
                 BloomFilter::Params{.num_bits = spec.num_cells,
                                     .num_hashes = spec.num_hashes,
                                     .hash_algorithm = spec.hash_algorithm,
                                     .seed = spec.seed},
                 out);
           },
       .deserializer = NativeDeserializer<BloomAdapter, BloomFilter>("bloom"),
       .mapped_saver =
           [](const MembershipFilter& filter, storage::ImageHeader* header,
              std::vector<storage::RegionPayload>* payloads) {
             return SaveBitArrayImage<BloomAdapter>(
                 "bloom", filter, header, payloads,
                 [](const BloomFilter&, storage::ImageGeometry*) {});
           },
       .mapped_opener =
           [](const storage::ImageHeader& header,
              const std::vector<storage::MappedRegionView>& regions,
              std::unique_ptr<MembershipFilter>* out) -> Status {
             const storage::ImageGeometry& g = header.geometry;
             Status s = CheckHashId(g.hash_algorithm);
             if (!s.ok()) return s;
             BloomFilter::Params params{
                 .num_bits = static_cast<size_t>(g.num_bits),
                 .num_hashes = g.num_hashes,
                 .hash_algorithm = static_cast<HashAlgorithm>(g.hash_algorithm),
                 .seed = g.seed};
             s = params.Validate();
             if (!s.ok()) return s;
             s = CheckSingleRegion(header, regions, /*expected_slack=*/0);
             if (!s.ok()) return s;
             return OpenBitArrayImage<BloomAdapter, BloomFilter>(
                 "bloom", params, header, regions, /*expected_slack=*/0, out);
           }});
  if (!s.ok()) return s;

  // shbf_m: num_hashes rounded up to even (k/2 base-offset pairs).
  s = r->Register(
      {.name = "shbf_m",
       .family = FilterFamily::kMembership,
       .description = "shifting Bloom filter, membership (paper §3)",
       .capabilities = kIncrementalAdd | kMergeable,
       .factory =
           [](const FilterSpec& spec, std::unique_ptr<MembershipFilter>* out) {
             uint32_t k = RoundUpToMultiple(spec.num_hashes < 2 ? 2
                                                                : spec.num_hashes,
                                            2);
             return MakeAdapter<ShbfMAdapter>(
                 "shbf_m",
                 ShbfM::Params{.num_bits = spec.num_cells,
                               .num_hashes = k,
                               .hash_algorithm = spec.hash_algorithm,
                               .seed = spec.seed},
                 out);
           },
       .deserializer = NativeDeserializer<ShbfMAdapter, ShbfM>("shbf_m"),
       .mapped_saver =
           [](const MembershipFilter& filter, storage::ImageHeader* header,
              std::vector<storage::RegionPayload>* payloads) {
             return SaveBitArrayImage<ShbfMAdapter>(
                 "shbf_m", filter, header, payloads,
                 [](const ShbfM& impl, storage::ImageGeometry* g) {
                   g->max_offset_span = impl.max_offset_span();
                 });
           },
       .mapped_opener =
           [](const storage::ImageHeader& header,
              const std::vector<storage::MappedRegionView>& regions,
              std::unique_ptr<MembershipFilter>* out) -> Status {
             const storage::ImageGeometry& g = header.geometry;
             Status s = CheckHashId(g.hash_algorithm);
             if (!s.ok()) return s;
             ShbfM::Params params{
                 .num_bits = static_cast<size_t>(g.num_bits),
                 .num_hashes = g.num_hashes,
                 .max_offset_span = g.max_offset_span,
                 .hash_algorithm = static_cast<HashAlgorithm>(g.hash_algorithm),
                 .seed = g.seed};
             s = params.Validate();
             if (!s.ok()) return s;
             // Shifted writes spill up to w̄ − 1 bits past m − 1: slack = w̄.
             s = CheckSingleRegion(header, regions, g.max_offset_span);
             if (!s.ok()) return s;
             return OpenBitArrayImage<ShbfMAdapter, ShbfM>(
                 "shbf_m", params, header, regions, g.max_offset_span, out);
           }});
  if (!s.ok()) return s;

  // blocked_bloom: num_cells bits rounded up to whole block_bits blocks; an
  // extra hash picks the block and all num_hashes probes stay inside it
  // (register-blocked resolve, one cache line per query).
  s = r->Register(
      {.name = "blocked_bloom",
       .family = FilterFamily::kMembership,
       .description =
           "cache-blocked Bloom filter (Putze 2007; one line per key)",
       .capabilities = kIncrementalAdd | kMergeable,
       .factory =
           [](const FilterSpec& spec, std::unique_ptr<MembershipFilter>* out) {
             return MakeAdapter<BlockedBloomAdapter>(
                 "blocked_bloom",
                 BlockedBloomFilter::Params{.num_bits = spec.num_cells,
                                            .num_hashes = spec.num_hashes,
                                            .block_bits = spec.block_bits,
                                            .hash_algorithm =
                                                spec.hash_algorithm,
                                            .seed = spec.seed},
                 out);
           },
       .deserializer = NativeDeserializer<BlockedBloomAdapter,
                                          BlockedBloomFilter>(
           "blocked_bloom")});
  if (!s.ok()) return s;

  // blocked_shbf_m: num_hashes rounded up to even; block_bits raised to the
  // scheme's 128-bit minimum (a 64-bit block leaves too few base positions
  // once the offset span is subtracted).
  s = r->Register(
      {.name = "blocked_shbf_m",
       .family = FilterFamily::kMembership,
       .description =
           "cache-blocked shifting Bloom filter, membership (paper §3 + "
           "Putze-style blocking)",
       .capabilities = kIncrementalAdd | kMergeable,
       .factory =
           [](const FilterSpec& spec, std::unique_ptr<MembershipFilter>* out) {
             uint32_t k = RoundUpToMultiple(spec.num_hashes < 2 ? 2
                                                                : spec.num_hashes,
                                            2);
             uint32_t block_bits = spec.block_bits < BlockedShbfM::kMinBlockBits
                                       ? BlockedShbfM::kMinBlockBits
                                       : spec.block_bits;
             return MakeAdapter<BlockedShbfMAdapter>(
                 "blocked_shbf_m",
                 BlockedShbfM::Params{.num_bits = spec.num_cells,
                                      .num_hashes = k,
                                      .block_bits = block_bits,
                                      .hash_algorithm = spec.hash_algorithm,
                                      .seed = spec.seed},
                 out);
           },
       .deserializer = NativeDeserializer<BlockedShbfMAdapter, BlockedShbfM>(
           "blocked_shbf_m")});
  if (!s.ok()) return s;

  // split_block_bloom: each of the k probes owns one sub_block_bits-wide
  // sub-word; block_bits is sized to k * sub_block_bits (clamped to one
  // cache line, rounded to whole words) so no sub-word goes unused and the
  // probe mask builds in one variable-shift vector op.
  s = r->Register(
      {.name = "split_block_bloom",
       .family = FilterFamily::kMembership,
       .description =
           "split-block Bloom filter (Boost.Bloom multiblock; one vector op "
           "per key)",
       .capabilities = kIncrementalAdd | kMergeable,
       .factory =
           [](const FilterSpec& spec, std::unique_ptr<MembershipFilter>* out) {
             const uint32_t k =
                 std::min(spec.num_hashes < 1 ? 1u : spec.num_hashes,
                          SplitBlockBloomFilter::kMaxBatchHashes);
             const uint32_t sub = spec.sub_block_bits;
             const uint32_t block_bits = static_cast<uint32_t>(std::clamp(
                 RoundUp(size_t{k} * sub, 64),
                 size_t{SplitBlockBloomFilter::kMinBlockBits},
                 size_t{SplitBlockBloomFilter::kMaxBlockBits}));
             return MakeAdapter<SplitBlockBloomAdapter>(
                 "split_block_bloom",
                 SplitBlockBloomFilter::Params{.num_bits = spec.num_cells,
                                               .num_hashes = k,
                                               .block_bits = block_bits,
                                               .sub_block_bits = sub,
                                               .hash_algorithm =
                                                   spec.hash_algorithm,
                                               .seed = spec.seed},
                 out);
           },
       .deserializer = NativeDeserializer<SplitBlockBloomAdapter,
                                          SplitBlockBloomFilter>(
           "split_block_bloom"),
       .mapped_saver =
           [](const MembershipFilter& filter, storage::ImageHeader* header,
              std::vector<storage::RegionPayload>* payloads) {
             return SaveBitArrayImage<SplitBlockBloomAdapter>(
                 "split_block_bloom", filter, header, payloads,
                 [](const SplitBlockBloomFilter& impl,
                    storage::ImageGeometry* g) {
                   g->block_bits = impl.block_bits();
                   g->sub_block_bits = impl.sub_block_bits();
                 });
           },
       .mapped_opener =
           [](const storage::ImageHeader& header,
              const std::vector<storage::MappedRegionView>& regions,
              std::unique_ptr<MembershipFilter>* out) -> Status {
             const storage::ImageGeometry& g = header.geometry;
             Status s = CheckHashId(g.hash_algorithm);
             if (!s.ok()) return s;
             SplitBlockBloomFilter::Params params{
                 .num_bits = static_cast<size_t>(g.num_bits),
                 .num_hashes = g.num_hashes,
                 .block_bits = g.block_bits,
                 .sub_block_bits = g.sub_block_bits,
                 .hash_algorithm = static_cast<HashAlgorithm>(g.hash_algorithm),
                 .seed = g.seed};
             s = params.Validate();
             if (!s.ok()) return s;
             // The owning ctor rounds m up to whole blocks; a saved image
             // must already be aligned or the view ctor would CHECK.
             if (g.num_bits % g.block_bits != 0) {
               return Status::InvalidArgument(
                   "field num_bits: " + std::to_string(g.num_bits) +
                   " not a multiple of block_bits " +
                   std::to_string(g.block_bits));
             }
             s = CheckSingleRegion(header, regions, /*expected_slack=*/0);
             if (!s.ok()) return s;
             return OpenBitArrayImage<SplitBlockBloomAdapter,
                                      SplitBlockBloomFilter>(
                 "split_block_bloom", params, header, regions,
                 /*expected_slack=*/0, out);
           }});
  if (!s.ok()) return s;

  // split_block_shbf_m: num_hashes rounded up to even (k/2 pairs), each
  // pair confined to its own sub-word. sub_block_bits raised to the
  // scheme's 16-bit minimum; the offset span is half the sub-word — wide
  // enough for base entropy, small enough that base + offset stays inside.
  s = r->Register(
      {.name = "split_block_shbf_m",
       .family = FilterFamily::kMembership,
       .description =
           "split-block shifting Bloom filter, membership (paper §3 + "
           "multiblock layout; one vector op per key)",
       .capabilities = kIncrementalAdd | kMergeable,
       .factory =
           [](const FilterSpec& spec, std::unique_ptr<MembershipFilter>* out) {
             const uint32_t k = std::min(
                 RoundUpToMultiple(spec.num_hashes < 2 ? 2 : spec.num_hashes,
                                   2),
                 2 * SplitBlockShbfM::kMaxBatchPairs);
             const uint32_t pairs = k / 2;
             const uint32_t sub =
                 spec.sub_block_bits < 16 ? 16 : spec.sub_block_bits;
             const uint32_t block_bits = static_cast<uint32_t>(std::clamp(
                 RoundUp(size_t{pairs} * sub, 64),
                 size_t{SplitBlockShbfM::kMinBlockBits},
                 size_t{SplitBlockShbfM::kMaxBlockBits}));
             return MakeAdapter<SplitBlockShbfMAdapter>(
                 "split_block_shbf_m",
                 SplitBlockShbfM::Params{.num_bits = spec.num_cells,
                                         .num_hashes = k,
                                         .block_bits = block_bits,
                                         .sub_block_bits = sub,
                                         .max_offset_span = sub / 2,
                                         .hash_algorithm = spec.hash_algorithm,
                                         .seed = spec.seed},
                 out);
           },
       .deserializer = NativeDeserializer<SplitBlockShbfMAdapter,
                                          SplitBlockShbfM>(
           "split_block_shbf_m"),
       .mapped_saver =
           [](const MembershipFilter& filter, storage::ImageHeader* header,
              std::vector<storage::RegionPayload>* payloads) {
             return SaveBitArrayImage<SplitBlockShbfMAdapter>(
                 "split_block_shbf_m", filter, header, payloads,
                 [](const SplitBlockShbfM& impl, storage::ImageGeometry* g) {
                   g->block_bits = impl.block_bits();
                   g->sub_block_bits = impl.sub_block_bits();
                   g->max_offset_span = impl.max_offset_span();
                 });
           },
       .mapped_opener =
           [](const storage::ImageHeader& header,
              const std::vector<storage::MappedRegionView>& regions,
              std::unique_ptr<MembershipFilter>* out) -> Status {
             const storage::ImageGeometry& g = header.geometry;
             Status s = CheckHashId(g.hash_algorithm);
             if (!s.ok()) return s;
             SplitBlockShbfM::Params params{
                 .num_bits = static_cast<size_t>(g.num_bits),
                 .num_hashes = g.num_hashes,
                 .block_bits = g.block_bits,
                 .sub_block_bits = g.sub_block_bits,
                 .max_offset_span = g.max_offset_span,
                 .hash_algorithm = static_cast<HashAlgorithm>(g.hash_algorithm),
                 .seed = g.seed};
             s = params.Validate();
             if (!s.ok()) return s;
             if (g.num_bits % g.block_bits != 0) {
               return Status::InvalidArgument(
                   "field num_bits: " + std::to_string(g.num_bits) +
                   " not a multiple of block_bits " +
                   std::to_string(g.block_bits));
             }
             // Pairs never leave their sub-word: slack 0, unlike flat shbf_m.
             s = CheckSingleRegion(header, regions, /*expected_slack=*/0);
             if (!s.ok()) return s;
             return OpenBitArrayImage<SplitBlockShbfMAdapter, SplitBlockShbfM>(
                 "split_block_shbf_m", params, header, regions,
                 /*expected_slack=*/0, out);
           }});
  if (!s.ok()) return s;

  // shbf_g: t = num_shifts (must divide 56); k rounded up to a multiple of
  // t + 1.
  s = r->Register(
      {.name = "shbf_g",
       .family = FilterFamily::kMembership,
       .description =
           "generalized shifting Bloom filter, t shifts (paper §3.6)",
       .factory =
           [](const FilterSpec& spec, std::unique_ptr<MembershipFilter>* out) {
             uint32_t t = spec.num_shifts;
             uint32_t k = RoundUpToMultiple(spec.num_hashes, t + 1);
             return MakeAdapter<GeneralizedShbfAdapter>(
                 "shbf_g",
                 GeneralizedShbfM::Params{.num_bits = spec.num_cells,
                                          .num_hashes = k,
                                          .num_shifts = t,
                                          .hash_algorithm = spec.hash_algorithm,
                                          .seed = spec.seed},
                 out);
           },
       .deserializer = NativeDeserializer<GeneralizedShbfAdapter,
                                          GeneralizedShbfM>("shbf_g")});
  if (!s.ok()) return s;

  // counting_shbf_m: same geometry as shbf_m plus counter_bits counters.
  s = r->Register(
      {.name = "counting_shbf_m",
       .family = FilterFamily::kMembership,
       .description = "counting shifting Bloom filter (paper §3.3)",
       .capabilities = kIncrementalAdd | kRemove,
       .factory =
           [](const FilterSpec& spec, std::unique_ptr<MembershipFilter>* out) {
             uint32_t k = RoundUpToMultiple(spec.num_hashes < 2 ? 2
                                                                : spec.num_hashes,
                                            2);
             return MakeAdapter<CountingShbfMAdapter>(
                 "counting_shbf_m",
                 CountingShbfM::Params{.num_bits = spec.num_cells,
                                       .num_hashes = k,
                                       .counter_bits = spec.counter_bits,
                                       .hash_algorithm = spec.hash_algorithm,
                                       .seed = spec.seed},
                 out);
           },
       .deserializer = NativeDeserializer<CountingShbfMAdapter, CountingShbfM>(
           "counting_shbf_m")});
  if (!s.ok()) return s;

  // km_bloom: num_cells bits, k simulated probes from two real hashes.
  s = r->Register(
      {.name = "km_bloom",
       .family = FilterFamily::kMembership,
       .description = "Kirsch-Mitzenmacher two-hash Bloom filter (paper §2.1)",
       .factory =
           [](const FilterSpec& spec, std::unique_ptr<MembershipFilter>* out) {
             return MakeAdapter<KmBloomAdapter>(
                 "km_bloom",
                 KmBloomFilter::Params{.num_bits = spec.num_cells,
                                       .num_hashes = spec.num_hashes,
                                       .hash_algorithm = spec.hash_algorithm,
                                       .seed = spec.seed},
                 out);
           },
       .deserializer =
           NativeDeserializer<KmBloomAdapter, KmBloomFilter>("km_bloom")});
  if (!s.ok()) return s;

  // one_mem_bf: num_cells bits partitioned into word_bits words.
  s = r->Register(
      {.name = "one_mem_bf",
       .family = FilterFamily::kMembership,
       .description = "one-memory-access Bloom filter (Qiao 2011; paper §6.2)",
       .factory =
           [](const FilterSpec& spec, std::unique_ptr<MembershipFilter>* out) {
             return MakeAdapter<OneMemBfAdapter>(
                 "one_mem_bf",
                 OneMemBloomFilter::Params{.num_bits = spec.num_cells,
                                           .num_hashes = spec.num_hashes,
                                           .word_bits = spec.word_bits,
                                           .hash_algorithm =
                                               spec.hash_algorithm,
                                           .seed = spec.seed},
                 out);
           },
       .deserializer = NativeDeserializer<OneMemBfAdapter, OneMemBloomFilter>(
           "one_mem_bf")});
  if (!s.ok()) return s;

  // counting_bloom: num_cells counters of counter_bits each.
  s = r->Register(
      {.name = "counting_bloom",
       .family = FilterFamily::kMembership,
       .description = "counting Bloom filter (Fan 2000; paper §1.1)",
       .capabilities = kIncrementalAdd | kRemove,
       .factory =
           [](const FilterSpec& spec, std::unique_ptr<MembershipFilter>* out) {
             return MakeAdapter<CountingBloomAdapter>(
                 "counting_bloom",
                 CountingBloomFilter::Params{.num_counters = spec.num_cells,
                                             .num_hashes = spec.num_hashes,
                                             .counter_bits = spec.counter_bits,
                                             .hash_algorithm =
                                                 spec.hash_algorithm,
                                             .seed = spec.seed},
                 out);
           },
       .deserializer = NativeDeserializer<CountingBloomAdapter,
                                          CountingBloomFilter>(
           "counting_bloom")});
  if (!s.ok()) return s;

  // cuckoo: buckets from expected_keys at ~84% load when given, otherwise
  // from num_cells interpreted as a bit budget for fingerprints.
  s = r->Register(
      {.name = "cuckoo",
       .family = FilterFamily::kMembership,
       .description = "cuckoo filter (Fan 2014; paper §2.1)",
       .capabilities = kIncrementalAdd | kRemove,
       .factory =
           [](const FilterSpec& spec, std::unique_ptr<MembershipFilter>* out) {
             size_t buckets;
             if (spec.expected_keys > 0) {
               buckets = static_cast<size_t>(
                   static_cast<double>(spec.expected_keys) /
                       (0.84 * spec.bucket_size) +
                   1.0);
             } else {
               buckets = spec.num_cells /
                         (static_cast<size_t>(spec.fingerprint_bits) *
                          spec.bucket_size);
             }
             if (buckets == 0) buckets = 1;
             return MakeAdapter<CuckooAdapter>(
                 "cuckoo",
                 CuckooFilter::Params{.num_buckets = buckets,
                                      .bucket_size = spec.bucket_size,
                                      .fingerprint_bits = spec.fingerprint_bits,
                                      .hash_algorithm = spec.hash_algorithm,
                                      .seed = spec.seed},
                 out);
           },
       .deserializer =
           [](std::string_view payload,
              std::unique_ptr<MembershipFilter>* out) -> Status {
             ByteReader reader(payload);
             uint64_t native_size = 0;
             if (!reader.GetU64(&native_size) ||
                 native_size > reader.remaining()) {
               return Status::InvalidArgument("cuckoo: bad payload framing");
             }
             std::string native(native_size, '\0');
             if (!reader.GetBytes(native.data(), native_size)) {
               return Status::InvalidArgument("cuckoo: truncated payload");
             }
             std::vector<std::pair<std::string, uint64_t>> overfull;
             if (!ReadKeyCountList(&reader, &overfull) || !reader.AtEnd()) {
               return Status::InvalidArgument("cuckoo: bad overfull table");
             }
             for (const auto& [key, count] : overfull) {
               if (count == 0) {
                 return Status::InvalidArgument(
                     "cuckoo: zero-count overfull entry");
               }
             }
             std::optional<CuckooFilter> impl;
             Status s = CuckooFilter::FromBytes(native, &impl);
             if (!s.ok()) return s;
             auto adapter =
                 std::make_unique<CuckooAdapter>("cuckoo", std::move(*impl));
             adapter->RestoreOverfull(std::move(overfull));
             *out = std::move(adapter);
             return Status::Ok();
           }});
  if (!s.ok()) return s;

  // --- multiplicity ----------------------------------------------------
  // spectral: num_cells counters, increment-all policy (delete-capable).
  s = r->Register(
      {.name = "spectral",
       .family = FilterFamily::kMultiplicity,
       .description = "spectral Bloom filter (Cohen 2003; paper §2.3, §6.4)",
       .capabilities = kIncrementalAdd | kRemove,
       .factory =
           [](const FilterSpec& spec, std::unique_ptr<MembershipFilter>* out) {
             return MakeAdapter<SpectralAdapter>(
                 "spectral",
                 SpectralBloomFilter::Params{.num_counters = spec.num_cells,
                                             .num_hashes = spec.num_hashes,
                                             .counter_bits = spec.counter_bits,
                                             .hash_algorithm =
                                                 spec.hash_algorithm,
                                             .seed = spec.seed},
                 out);
           },
       .deserializer = NativeDeserializer<SpectralAdapter, SpectralBloomFilter>(
           "spectral")});
  if (!s.ok()) return s;

  // cm: depth = num_hashes rows, width = num_cells / depth counters per row.
  s = r->Register(
      {.name = "cm",
       .family = FilterFamily::kMultiplicity,
       .description = "count-min sketch (Cormode 2005; paper §2.3, §5.5)",
       .factory =
           [](const FilterSpec& spec, std::unique_ptr<MembershipFilter>* out) {
             size_t width = spec.num_cells / spec.num_hashes;
             return MakeAdapter<CmSketchAdapter>(
                 "cm",
                 CmSketch::Params{.depth = spec.num_hashes,
                                  .width = width == 0 ? 1 : width,
                                  .counter_bits = spec.counter_bits,
                                  .hash_algorithm = spec.hash_algorithm,
                                  .seed = spec.seed},
                 out);
           },
       .deserializer = NativeDeserializer<CmSketchAdapter, CmSketch>("cm")});
  if (!s.ok()) return s;

  // scm: depth rounded up to even; width = num_cells / depth; counter_bits
  // clamped to 28 so pairs stay one-access (§5.5).
  s = r->Register(
      {.name = "scm",
       .family = FilterFamily::kMultiplicity,
       .description = "shifting count-min sketch (paper §5.5)",
       .factory =
           [](const FilterSpec& spec, std::unique_ptr<MembershipFilter>* out) {
             uint32_t depth = RoundUpToMultiple(
                 spec.num_hashes < 2 ? 2 : spec.num_hashes, 2);
             size_t width = spec.num_cells / depth;
             return MakeAdapter<ScmSketchAdapter>(
                 "scm",
                 ScmSketch::Params{.depth = depth,
                                   .width = width == 0 ? 1 : width,
                                   .counter_bits =
                                       spec.counter_bits > 28
                                           ? 28u
                                           : spec.counter_bits,
                                   .hash_algorithm = spec.hash_algorithm,
                                   .seed = spec.seed},
                 out);
           },
       .deserializer =
           NativeDeserializer<ScmSketchAdapter, ScmSketch>("scm")});
  if (!s.ok()) return s;

  // dynamic_count: num_cells counters; base width clamped to the scheme's
  // [1, 16] range.
  s = r->Register(
      {.name = "dynamic_count",
       .family = FilterFamily::kMultiplicity,
       .description = "dynamic count filter (Aguilar-Saborit 2006; paper §2.3)",
       .capabilities = kIncrementalAdd | kRemove,
       .factory =
           [](const FilterSpec& spec, std::unique_ptr<MembershipFilter>* out) {
             return MakeAdapter<DynamicCountAdapter>(
                 "dynamic_count",
                 DynamicCountFilter::Params{.num_counters = spec.num_cells,
                                            .num_hashes = spec.num_hashes,
                                            .base_bits =
                                                spec.counter_bits > 16
                                                    ? 16u
                                                    : spec.counter_bits,
                                            .hash_algorithm =
                                                spec.hash_algorithm,
                                            .seed = spec.seed},
                 out);
           },
       .deserializer = NativeDeserializer<DynamicCountAdapter,
                                          DynamicCountFilter>(
           "dynamic_count")});
  if (!s.ok()) return s;

  // shbf_x: bulk-built multiplicity filter; max_count clamped to the
  // implementation cap.
  s = r->Register(
      {.name = "shbf_x",
       .family = FilterFamily::kMultiplicity,
       .description = "shifting Bloom filter, multiplicity (paper §5)",
       .capabilities = kRemove,
       .factory =
           [](const FilterSpec& spec, std::unique_ptr<MembershipFilter>* out) {
             ShbfXParams params{
                 .num_bits = spec.num_cells,
                 .num_hashes = spec.num_hashes,
                 .max_count = spec.max_count > ShbfXParams::kMaxSupportedCount
                                  ? ShbfXParams::kMaxSupportedCount
                                  : spec.max_count,
                 .hash_algorithm = spec.hash_algorithm,
                 .seed = spec.seed};
             Status valid = params.Validate();
             if (!valid.ok()) return valid;
             *out = std::make_unique<ShbfXLazyAdapter>("shbf_x", spec, params);
             return Status::Ok();
           },
       .deserializer =
           [](std::string_view payload,
              std::unique_ptr<MembershipFilter>* out) -> Status {
             ByteReader reader(payload);
             FilterSpec spec;
             std::vector<std::string> multiset;
             if (!spec_serde::ReadSpec(&reader, &spec) ||
                 !ReadKeyList(&reader, &multiset) || !reader.AtEnd()) {
               return Status::InvalidArgument("shbf_x: bad replay payload");
             }
             // Occurrences past max_count are legal here: the adapter's
             // lazy build saturates them at the cap, exactly as the live
             // filter the blob was written from did.
             std::unique_ptr<MembershipFilter> base;
             Status s = FilterRegistry::Global().Create("shbf_x", spec, &base);
             if (!s.ok()) return s;
             static_cast<ShbfXLazyAdapter*>(base.get())
                 ->SetKeys(std::move(multiset));
             *out = std::move(base);
             return Status::Ok();
           }});
  if (!s.ok()) return s;

  // counting_shbf_x: incremental twin, exact-table-backed (§5.3.2).
  s = r->Register(
      {.name = "counting_shbf_x",
       .family = FilterFamily::kMultiplicity,
       .description =
           "counting shifting Bloom filter, multiplicity (paper §5.3)",
       .capabilities = kIncrementalAdd | kRemove,
       .factory =
           [](const FilterSpec& spec, std::unique_ptr<MembershipFilter>* out) {
             CountingShbfX::Params params{
                 .filter = {.num_bits = spec.num_cells,
                            .num_hashes = spec.num_hashes,
                            .max_count =
                                spec.max_count > ShbfXParams::kMaxSupportedCount
                                    ? ShbfXParams::kMaxSupportedCount
                                    : spec.max_count,
                            .hash_algorithm = spec.hash_algorithm,
                            .seed = spec.seed},
                 .counter_bits = spec.counter_bits,
                 .mode = CountingShbfX::UpdateMode::kTableBacked};
             Status valid = params.Validate();
             if (!valid.ok()) return valid;
             *out = std::make_unique<CountingShbfXAdapter>("counting_shbf_x",
                                                           spec, params);
             return Status::Ok();
           },
       .deserializer =
           [](std::string_view payload,
              std::unique_ptr<MembershipFilter>* out) -> Status {
             ByteReader reader(payload);
             FilterSpec spec;
             if (!spec_serde::ReadSpec(&reader, &spec)) {
               return Status::InvalidArgument(
                   "counting_shbf_x: bad replay payload");
             }
             std::vector<std::pair<std::string, uint64_t>> entries;
             if (!ReadKeyCountList(&reader, &entries) || !reader.AtEnd()) {
               return Status::InvalidArgument(
                   "counting_shbf_x: bad replay table");
             }
             // The exact table can never legally hold counts outside
             // [1, max_count]; reject corruption here, where a Status is
             // possible, instead of replaying it.
             const uint64_t effective_max =
                 std::min(spec.max_count, ShbfXParams::kMaxSupportedCount);
             for (const auto& [key, count] : entries) {
               if (count == 0 || count > effective_max) {
                 return Status::InvalidArgument(
                     "counting_shbf_x: table count out of range");
               }
             }
             std::unique_ptr<MembershipFilter> base;
             Status s = FilterRegistry::Global().Create("counting_shbf_x",
                                                        spec, &base);
             if (!s.ok()) return s;
             auto* adapter = static_cast<CountingShbfXAdapter*>(base.get());
             for (const auto& [key, count] : entries) {
               for (uint64_t occurrence = 0; occurrence < count;
                    ++occurrence) {
                 adapter->Add(key);
               }
             }
             *out = std::move(base);
             return Status::Ok();
           }});
  if (!s.ok()) return s;

  // --- association -----------------------------------------------------
  // shbf_a: bulk-built single-array association filter.
  s = r->Register(
      {.name = "shbf_a",
       .family = FilterFamily::kAssociation,
       .description = "shifting Bloom filter, association (paper §4)",
       .capabilities = kRemove,
       .factory =
           [](const FilterSpec& spec, std::unique_ptr<MembershipFilter>* out) {
             ShbfAParams params{.num_bits = spec.num_cells,
                                .num_hashes = spec.num_hashes,
                                .hash_algorithm = spec.hash_algorithm,
                                .seed = spec.seed};
             Status valid = params.Validate();
             if (!valid.ok()) return valid;
             *out = std::make_unique<ShbfALazyAdapter>("shbf_a", spec, params);
             return Status::Ok();
           },
       .deserializer =
           [](std::string_view payload,
              std::unique_ptr<MembershipFilter>* out) -> Status {
             ByteReader reader(payload);
             FilterSpec spec;
             std::vector<std::string> s1;
             std::vector<std::string> s2;
             if (!spec_serde::ReadSpec(&reader, &spec) ||
                 !ReadKeyList(&reader, &s1) || !ReadKeyList(&reader, &s2) ||
                 !reader.AtEnd()) {
               return Status::InvalidArgument("shbf_a: bad replay payload");
             }
             std::unique_ptr<MembershipFilter> base;
             Status s = FilterRegistry::Global().Create("shbf_a", spec, &base);
             if (!s.ok()) return s;
             static_cast<ShbfALazyAdapter*>(base.get())
                 ->SetKeys(std::move(s1), std::move(s2));
             *out = std::move(base);
             return Status::Ok();
           }});
  if (!s.ok()) return s;

  // counting_shbf_a: incremental association twin (§4.4).
  s = r->Register(
      {.name = "counting_shbf_a",
       .family = FilterFamily::kAssociation,
       .description =
           "counting shifting Bloom filter, association (paper §4.4)",
       .capabilities = kIncrementalAdd | kRemove,
       .factory =
           [](const FilterSpec& spec, std::unique_ptr<MembershipFilter>* out) {
             CountingShbfA::Params params{
                 .filter = {.num_bits = spec.num_cells,
                            .num_hashes = spec.num_hashes,
                            .hash_algorithm = spec.hash_algorithm,
                            .seed = spec.seed},
                 .counter_bits = spec.counter_bits};
             Status valid = params.Validate();
             if (!valid.ok()) return valid;
             *out = std::make_unique<CountingShbfAAdapter>("counting_shbf_a",
                                                           spec, params);
             return Status::Ok();
           },
       .deserializer =
           [](std::string_view payload,
              std::unique_ptr<MembershipFilter>* out) -> Status {
             ByteReader reader(payload);
             FilterSpec spec;
             std::vector<std::string> s1;
             std::vector<std::string> s2;
             if (!spec_serde::ReadSpec(&reader, &spec) ||
                 !ReadKeyList(&reader, &s1) || !ReadKeyList(&reader, &s2) ||
                 !reader.AtEnd()) {
               return Status::InvalidArgument(
                   "counting_shbf_a: bad replay payload");
             }
             std::unique_ptr<MembershipFilter> base;
             Status s = FilterRegistry::Global().Create("counting_shbf_a",
                                                        spec, &base);
             if (!s.ok()) return s;
             auto* adapter = static_cast<CountingShbfAAdapter*>(base.get());
             for (const auto& key : s1) adapter->AddToS1(key);
             for (const auto& key : s2) adapter->AddToS2(key);
             *out = std::move(base);
             return Status::Ok();
           }});
  if (!s.ok()) return s;

  // ibf: num_cells split evenly between the two per-set Bloom filters.
  // Note: despite the acronym these are INDIVIDUAL (not invertible) Bloom
  // filters — two plain bit arrays — so deletion is fundamentally
  // unsupported and the entry does not advertise kRemove.
  s = r->Register(
      {.name = "ibf",
       .family = FilterFamily::kAssociation,
       .description = "individual Bloom filters baseline (paper §4.5)",
       .factory =
           [](const FilterSpec& spec, std::unique_ptr<MembershipFilter>* out) {
             size_t half = spec.num_cells / 2;
             if (half == 0) half = 1;
             IndividualBloomFilters::Params params{
                 .num_bits_s1 = half,
                 .num_bits_s2 = half,
                 .num_hashes = spec.num_hashes,
                 .hash_algorithm = spec.hash_algorithm,
                 .seed = spec.seed};
             Status valid = params.Validate();
             if (!valid.ok()) return valid;
             *out = std::make_unique<IbfAdapter>(
                 "ibf", IndividualBloomFilters(params));
             return Status::Ok();
           },
       .deserializer =
           [](std::string_view payload,
              std::unique_ptr<MembershipFilter>* out) -> Status {
             ByteReader reader(payload);
             uint64_t adds = 0;
             uint64_t blob1_size = 0;
             if (!reader.GetU64(&adds) || !reader.GetU64(&blob1_size) ||
                 blob1_size > reader.remaining()) {
               return Status::InvalidArgument("ibf: bad payload framing");
             }
             std::string blob1(blob1_size, '\0');
             if (!reader.GetBytes(blob1.data(), blob1_size)) {
               return Status::InvalidArgument("ibf: truncated payload");
             }
             std::string blob2(reader.remaining(), '\0');
             if (!blob2.empty() &&
                 !reader.GetBytes(blob2.data(), blob2.size())) {
               return Status::InvalidArgument("ibf: truncated payload");
             }
             std::optional<BloomFilter> bf1;
             std::optional<BloomFilter> bf2;
             Status s1 = BloomFilter::FromBytes(blob1, &bf1);
             if (!s1.ok()) return s1;
             Status s2 = BloomFilter::FromBytes(blob2, &bf2);
             if (!s2.ok()) return s2;
             auto adapter = std::make_unique<IbfAdapter>(
                 "ibf", IndividualBloomFilters(std::move(*bf1),
                                               std::move(*bf2)));
             adapter->RestoreAddCount(adds);
             *out = std::move(adapter);
             return Status::Ok();
           }});
  return s;
}

}  // namespace

void RegisterBuiltinFilters(FilterRegistry* registry) {
  CheckOk(RegisterAll(registry));
}

}  // namespace shbf
