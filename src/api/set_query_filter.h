// The unified set-query interface layer (the paper's "framework" made
// literal). The paper presents ShBF as ONE framework answering three kinds
// of set queries — membership (§3), association (§4) and multiplicity (§5) —
// yet implementations naturally grow one bespoke class per scheme. This
// header is the seam that lets a single driver loop (bench, differential
// test, CLI, future sharded/async front ends) serve every variant:
//
//   SetQueryFilter                 — identity + lifecycle + serialization
//     └─ MembershipFilter          — Add / Contains (+ batch, + cost model)
//          ├─ MultiplicityFilter   — QueryCount; Contains == count > 0
//          └─ AssociationFilter    — AddToS1/S2, Query; Contains == in union
//
// Virtual dispatch costs a few ns per query, which the hot-path benches must
// not pay: the concrete classes (ShbfM, BloomFilter, ...) remain intact and
// fully usable with inlined calls; the adapters in adapters.cc wrap them
// thinly for registry-driven code. Both views share the same underlying
// filter state.

#ifndef SHBF_API_SET_QUERY_FILTER_H_
#define SHBF_API_SET_QUERY_FILTER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/query_stats.h"
#include "core/set_query_types.h"
#include "core/status.h"

namespace shbf {

/// Tagged, type-erased pointer to a wrapped concrete filter for which the
/// batch engine (src/engine/batch_query_engine.h) has a specialized
/// non-virtual path: hash pre-compute, software prefetch, two-pass resolve.
///
/// Adapters whose wrapped class exposes the Probe protocol (ShbfM, Bloom-
/// Filter, ShbfX, ShbfA) return their concrete impl here; everything else
/// returns the default `kNone` and the engine falls back to the virtual
/// per-key interface. `impl` points at an instance of the class named by
/// `kind` and is only valid while the owning filter is alive.
struct BatchFastPath {
  enum class Kind : uint8_t {
    kNone = 0,          ///< no specialized path; use the virtual interface
    kShbfM = 1,         ///< `impl` is a `const ShbfM*`
    kBloom = 2,         ///< `impl` is a `const BloomFilter*`
    kShbfX = 3,         ///< `impl` is a `const ShbfX*`
    kShbfA = 4,         ///< `impl` is a `const ShbfA*`
    kBlockedBloom = 5,  ///< `impl` is a `const BlockedBloomFilter*`
    kBlockedShbfM = 6,  ///< `impl` is a `const BlockedShbfM*`
    kSplitBlockBloom = 7,  ///< `impl` is a `const SplitBlockBloomFilter*`
    kSplitBlockShbfM = 8,  ///< `impl` is a `const SplitBlockShbfM*`
  };
  Kind kind = Kind::kNone;
  const void* impl = nullptr;
};

/// Capability bits a MembershipFilter advertises through capabilities().
/// The registry surfaces the same bits statically per entry
/// (FilterRegistry::Entry::capabilities, `shbf_cli list`), so scripts can
/// discover e.g. remove-capable filters without instantiating them.
enum FilterCapability : uint32_t {
  /// Remove(key) is supported (counting / fingerprint / buffered schemes).
  kRemove = 1u << 0,
  /// Add takes effect immediately (no deferred bulk rebuild on query).
  kIncrementalAdd = 1u << 1,
  /// MergeFrom(other) unions a same-geometry sibling into this filter.
  kMergeable = 1u << 2,
};

/// "add,remove,merge" / "bulk" rendering for CLIs and logs.
inline std::string CapabilitiesToString(uint32_t capabilities) {
  std::string out = (capabilities & kIncrementalAdd) ? "add" : "bulk";
  if (capabilities & kRemove) out += ",remove";
  if (capabilities & kMergeable) out += ",merge";
  return out;
}

/// Abstract base for every query-side structure in the library.
class SetQueryFilter {
 public:
  virtual ~SetQueryFilter() = default;

  /// The registry name this instance was constructed under ("shbf_m", ...).
  virtual std::string_view name() const = 0;

  /// Elements added through this interface since construction / Clear().
  virtual size_t num_elements() const = 0;

  /// Approximate live footprint of the filter state in bytes.
  virtual size_t memory_bytes() const = 0;

  /// Resets to the empty filter.
  virtual void Clear() = 0;

  /// Serializes the filter state (without the registry envelope; use
  /// FilterRegistry::Serialize for a self-describing blob).
  virtual std::string ToBytes() const = 0;
};

/// A filter answering "is e in S?" with no false negatives.
class MembershipFilter : public SetQueryFilter {
 public:
  virtual void Add(std::string_view key) = 0;
  virtual bool Contains(std::string_view key) const = 0;

  /// Same answer, accumulating the paper's cost model (memory accesses and
  /// hash computations) into `stats`. The default fallback counts only the
  /// query itself; adapters override it with the structure's real cost.
  virtual bool ContainsWithStats(std::string_view key,
                                 QueryStats* stats) const {
    ++stats->queries;
    return Contains(key);
  }

  /// Batched membership query. `results` is resized to keys.size(); entry i
  /// receives Contains(keys[i]). Implementations with software-prefetching
  /// batch paths override this; the default is a scalar loop.
  virtual void ContainsBatch(const std::vector<std::string>& keys,
                             std::vector<uint8_t>* results) const {
    results->resize(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      (*results)[i] = Contains(keys[i]) ? 1 : 0;
    }
  }

  /// View-indexed batch query: identical answers without requiring callers
  /// to own the key bytes (the multi-set frontier descent passes views into
  /// its caller's keys instead of copying survivors). The views must stay
  /// valid for the duration of the call.
  virtual void ContainsBatch(const std::vector<std::string_view>& keys,
                             std::vector<uint8_t>* results) const {
    results->resize(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      (*results)[i] = Contains(keys[i]) ? 1 : 0;
    }
  }

  /// Removes one previously-added occurrence of `key`. Contract:
  ///   * Removing a key the filter can prove absent (Contains(key) == false)
  ///     returns kNotFound and leaves the filter unchanged.
  ///   * Removing a key that was never added but collides (a false positive)
  ///     is the standard counting-filter hazard: it may introduce false
  ///     negatives for OTHER keys. Callers must only remove keys they added;
  ///     the interface turns the detectable case into a Status instead of
  ///     the concrete classes' CHECK-abort.
  /// Default: kFailedPrecondition — the scheme cannot delete (plain bit
  /// arrays, min-increase sketches). Schemes that can advertise kRemove in
  /// capabilities().
  virtual Status Remove(std::string_view key) {
    (void)key;
    return Status::FailedPrecondition(std::string(name()) +
                                      ": Remove is not supported");
  }

  /// Unions `other` (same registry entry, same geometry and seed) into this
  /// filter. Default: kFailedPrecondition; bit-array schemes whose Add only
  /// sets bits implement it as a bitwise OR and advertise kMergeable.
  virtual Status MergeFrom(const MembershipFilter& other) {
    (void)other;
    return Status::FailedPrecondition(std::string(name()) +
                                      ": MergeFrom is not supported");
  }

  /// The capability bits of this instance; must agree with the registry
  /// entry it was built from. Default derives kIncrementalAdd from
  /// IncrementalAdd() so legacy adapters stay truthful.
  virtual uint32_t capabilities() const {
    return IncrementalAdd() ? kIncrementalAdd : 0u;
  }

  /// True if Add takes effect immediately. False for bulk-built structures
  /// (shbf_x, shbf_a): their Add buffers the key and the filter is rebuilt
  /// lazily on the next query, which is correct but costly under heavy
  /// add/query interleaving.
  virtual bool IncrementalAdd() const { return true; }

  /// Completes any deferred (lazy) build NOW, so every subsequent const
  /// query is pure — no hidden mutation inside Contains. Wrappers that
  /// promise shared-lock-safe reads (DynamicFilter after a fold) call this
  /// instead of relying on a probe query, which short-circuiting composites
  /// may route past a still-dirty component. Default: nothing is deferred.
  virtual void PrepareForConstReads() {}

  /// Escape hatch for the batch engine: adapters wrapping a concrete class
  /// with a Probe protocol return a tagged pointer to it. Called once per
  /// batch (not per key), so lazily-built adapters use it to force a rebuild
  /// before handing out the pointer. Default: no fast path.
  virtual BatchFastPath batch_fast_path() const { return {}; }
};

/// A filter answering "how many times does e appear in the multi-set S?".
/// Estimates never underestimate; 0 means "definitely absent". Add() adds
/// one occurrence, so the membership view of a multiplicity filter is
/// "count > 0".
class MultiplicityFilter : public MembershipFilter {
 public:
  virtual uint64_t QueryCount(std::string_view key) const = 0;

  bool Contains(std::string_view key) const override {
    return QueryCount(key) > 0;
  }
};

/// A filter answering "which of S1/S2 does e belong to?" for e ∈ S1 ∪ S2.
/// The membership view is membership in the union: Add() inserts into S1 and
/// Contains() is "definitely-maybe in S1 ∪ S2" (kNotFound means definitely
/// absent; anything else preserves no-false-negatives for inserted keys).
class AssociationFilter : public MembershipFilter {
 public:
  virtual void AddToS1(std::string_view key) = 0;
  virtual void AddToS2(std::string_view key) = 0;
  virtual AssociationOutcome Query(std::string_view key) const = 0;

  virtual AssociationOutcome QueryWithStats(std::string_view key,
                                            QueryStats* stats) const {
    ++stats->queries;
    return Query(key);
  }

  void Add(std::string_view key) override { AddToS1(key); }

  bool Contains(std::string_view key) const override {
    return Query(key) != AssociationOutcome::kNotFound;
  }
};

}  // namespace shbf

#endif  // SHBF_API_SET_QUERY_FILTER_H_
