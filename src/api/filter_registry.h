// FilterRegistry — string-keyed factories over the unified interface.
//
// Every filter in the library registers under a stable name ("shbf_m",
// "bloom", "cuckoo", ...) with a factory mapping a FilterSpec to a live
// MembershipFilter and a deserializer reversing ToBytes(). Drivers iterate
// Names() instead of hand-wiring each scheme — the registry is what turns
// fifteen ad-hoc classes into one framework (cf. gpdb's bloom_set registry
// and Boost.Bloom's single configurable filter template).
//
// Serialized blobs carry a self-describing envelope (magic + version + the
// registry name), so FilterRegistry::Deserialize can reconstruct a filter
// of the right type from bytes alone.

#ifndef SHBF_API_FILTER_REGISTRY_H_
#define SHBF_API_FILTER_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/filter_spec.h"
#include "api/set_query_filter.h"
#include "core/status.h"

namespace shbf {

/// The three query families of the paper (§1.1). Every entry is usable as a
/// MembershipFilter; multiplicity/association entries additionally implement
/// the wider interfaces.
enum class FilterFamily : uint8_t {
  kMembership = 0,
  kMultiplicity = 1,
  kAssociation = 2,
};

const char* FilterFamilyName(FilterFamily family);

class FilterRegistry {
 public:
  using Factory = std::function<Status(const FilterSpec& spec,
                                       std::unique_ptr<MembershipFilter>* out)>;
  using Deserializer =
      std::function<Status(std::string_view payload,
                           std::unique_ptr<MembershipFilter>* out)>;

  struct Entry {
    std::string name;
    FilterFamily family = FilterFamily::kMembership;
    /// One line for `shbf_cli list`: scheme + paper section.
    std::string description;
    /// Static FilterCapability bits of every instance this entry builds
    /// (kRemove / kIncrementalAdd / kMergeable); what `shbf_cli list`
    /// prints so scripts can discover e.g. remove-capable filters.
    uint32_t capabilities = kIncrementalAdd;
    Factory factory;
    Deserializer deserializer;
  };

  /// The process-wide registry, pre-populated with every built-in filter.
  static FilterRegistry& Global();

  /// Adds an entry; fails on a duplicate or empty name.
  Status Register(Entry entry);

  bool Has(std::string_view name) const;
  const Entry* Find(std::string_view name) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;
  std::vector<std::string> Names(FilterFamily family) const;

  /// Constructs the filter registered under `name` from `spec`, composing
  /// the engine wrappers the spec asks for (innermost first):
  ///   * auto_scale         → AutoScalingFilter      ("scaling/<name>")
  ///   * delta_capacity > 0 → DynamicFilter          ("dynamic/...")
  ///   * shards > 1         → ShardedMembershipFilter ("sharded/...", each
  ///     shard its own dynamic/scaling stack with a proportional share of
  ///     num_cells, expected_keys and delta_capacity — bounded rebuild
  ///     pause per shard)
  Status Create(std::string_view name, const FilterSpec& spec,
                std::unique_ptr<MembershipFilter>* out) const;

  /// Create + downcast for the wider interfaces; fails with
  /// kFailedPrecondition if the entry is not of the requested family.
  Status CreateMultiplicity(std::string_view name, const FilterSpec& spec,
                            std::unique_ptr<MultiplicityFilter>* out) const;
  Status CreateAssociation(std::string_view name, const FilterSpec& spec,
                           std::unique_ptr<AssociationFilter>* out) const;

  /// Wraps filter.ToBytes() in the self-describing registry envelope.
  static std::string Serialize(const MembershipFilter& filter);

  /// Reconstructs a filter from a Serialize() blob, dispatching on the name
  /// stored in the envelope.
  Status Deserialize(std::string_view bytes,
                     std::unique_ptr<MembershipFilter>* out) const;

 private:
  /// Builds one (unsharded) filter: the entry's factory, wrapped in the
  /// scaling and/or dynamic layers when the spec asks for them.
  Status CreateSingle(const Entry& entry, const FilterSpec& spec,
                      std::unique_ptr<MembershipFilter>* out) const;

  std::map<std::string, Entry, std::less<>> entries_;
};

/// Peels the engine-wrapper prefixes ("sharded/", "dynamic/", "scaling/")
/// off an envelope name, in any nesting order, returning the innermost base
/// name ("sharded/dynamic/shbf_x" → "shbf_x").
std::string_view StripWrapperPrefixes(std::string_view name);

/// Registers the built-in filters (defined in adapters.cc); called once by
/// FilterRegistry::Global(). Exposed for tests that build private registries.
void RegisterBuiltinFilters(FilterRegistry* registry);

}  // namespace shbf

#endif  // SHBF_API_FILTER_REGISTRY_H_
