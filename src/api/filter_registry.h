// FilterRegistry — string-keyed factories over the unified interface.
//
// Every filter in the library registers under a stable name ("shbf_m",
// "bloom", "cuckoo", ...) with a factory mapping a FilterSpec to a live
// MembershipFilter and a deserializer reversing ToBytes(). Drivers iterate
// Names() instead of hand-wiring each scheme — the registry is what turns
// fifteen ad-hoc classes into one framework (cf. gpdb's bloom_set registry
// and Boost.Bloom's single configurable filter template).
//
// Serialized blobs carry a self-describing envelope (magic + version + the
// registry name), so FilterRegistry::Deserialize can reconstruct a filter
// of the right type from bytes alone.

#ifndef SHBF_API_FILTER_REGISTRY_H_
#define SHBF_API_FILTER_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/filter_spec.h"
#include "api/set_query_filter.h"
#include "core/status.h"
#include "storage/filter_image.h"
#include "storage/mapped_filter.h"

namespace shbf {

/// The three query families of the paper (§1.1). Every entry is usable as a
/// MembershipFilter; multiplicity/association entries additionally implement
/// the wider interfaces.
enum class FilterFamily : uint8_t {
  kMembership = 0,
  kMultiplicity = 1,
  kAssociation = 2,
};

const char* FilterFamilyName(FilterFamily family);

class FilterRegistry {
 public:
  using Factory = std::function<Status(const FilterSpec& spec,
                                       std::unique_ptr<MembershipFilter>* out)>;
  using Deserializer =
      std::function<Status(std::string_view payload,
                           std::unique_ptr<MembershipFilter>* out)>;

  /// Mapped-image save hook: fills `header`'s geometry record from the live
  /// filter and hands back borrowed pointers to its array payload(s). Fails
  /// with kFailedPrecondition when `filter` is not the unwrapped concrete
  /// type this entry builds (engine wrappers have no flat layout).
  using MappedSaver = std::function<Status(
      const MembershipFilter& filter, storage::ImageHeader* header,
      std::vector<storage::RegionPayload>* payloads)>;

  /// Mapped-image open hook: validates the decoded geometry against what
  /// this entry would derive and builds the filter with array *views* into
  /// the mapped regions (no copy). Any mismatch is a Status naming the
  /// offending field — never a CHECK, since the bytes come off disk.
  using MappedOpener = std::function<Status(
      const storage::ImageHeader& header,
      const std::vector<storage::MappedRegionView>& regions,
      std::unique_ptr<MembershipFilter>* out)>;

  struct Entry {
    std::string name;
    FilterFamily family = FilterFamily::kMembership;
    /// One line for `shbf_cli list`: scheme + paper section.
    std::string description;
    /// Static FilterCapability bits of every instance this entry builds
    /// (kRemove / kIncrementalAdd / kMergeable); what `shbf_cli list`
    /// prints so scripts can discover e.g. remove-capable filters.
    uint32_t capabilities = kIncrementalAdd;
    Factory factory;
    Deserializer deserializer;
    /// Flat-image hooks (null = heap serde only). The hot membership read
    /// paths (bloom, shbf_m, split_block_*) register both.
    MappedSaver mapped_saver = nullptr;
    MappedOpener mapped_opener = nullptr;
  };

  /// The process-wide registry, pre-populated with every built-in filter.
  static FilterRegistry& Global();

  /// Adds an entry; fails on a duplicate or empty name.
  Status Register(Entry entry);

  bool Has(std::string_view name) const;
  const Entry* Find(std::string_view name) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;
  std::vector<std::string> Names(FilterFamily family) const;

  /// Constructs the filter registered under `name` from `spec`, composing
  /// the engine wrappers the spec asks for (innermost first):
  ///   * auto_scale         → AutoScalingFilter      ("scaling/<name>")
  ///   * delta_capacity > 0 → DynamicFilter          ("dynamic/...")
  ///   * shards > 1         → ShardedMembershipFilter ("sharded/...", each
  ///     shard its own dynamic/scaling stack with a proportional share of
  ///     num_cells, expected_keys and delta_capacity — bounded rebuild
  ///     pause per shard)
  Status Create(std::string_view name, const FilterSpec& spec,
                std::unique_ptr<MembershipFilter>* out) const;

  /// Create + downcast for the wider interfaces; fails with
  /// kFailedPrecondition if the entry is not of the requested family.
  Status CreateMultiplicity(std::string_view name, const FilterSpec& spec,
                            std::unique_ptr<MultiplicityFilter>* out) const;
  Status CreateAssociation(std::string_view name, const FilterSpec& spec,
                           std::unique_ptr<AssociationFilter>* out) const;

  /// Wraps filter.ToBytes() in the self-describing registry envelope.
  static std::string Serialize(const MembershipFilter& filter);

  /// Reconstructs a filter from a Serialize() blob, dispatching on the name
  /// stored in the envelope.
  Status Deserialize(std::string_view bytes,
                     std::unique_ptr<MembershipFilter>* out) const;

  /// True when `name`'s entry registered the flat-image hooks.
  bool SupportsMapped(std::string_view name) const;

  /// Writes `filter` as a flat mmap-able image at `path` (versioned header
  /// page + page-aligned array regions; docs/persistence.md), crash-
  /// consistently: temp file → msync → rename → directory fsync.
  /// `generation` is stamped into the header for old-vs-new assertions
  /// across a crash. `filter` must be an unwrapped instance of a mapped-
  /// capable entry (a MappedFilter is unwrapped transparently).
  Status SaveMapped(const MembershipFilter& filter, const std::string& path,
                    uint64_t generation = 0) const;

  /// Opens an image read-only: maps the file, validates the header (and
  /// payload checksums when `options.verify_payload`), and serves queries
  /// straight off the mapping via a storage::MappedFilter. O(1) in filter
  /// size by default. Every failure is a Status naming `path` and the
  /// offending field.
  Status OpenMapped(const std::string& path,
                    std::unique_ptr<MembershipFilter>* out,
                    const storage::OpenOptions& options = {}) const;

 private:
  /// Builds one (unsharded) filter: the entry's factory, wrapped in the
  /// scaling and/or dynamic layers when the spec asks for them.
  Status CreateSingle(const Entry& entry, const FilterSpec& spec,
                      std::unique_ptr<MembershipFilter>* out) const;

  std::map<std::string, Entry, std::less<>> entries_;
};

/// Peels the engine-wrapper prefixes ("sharded/", "dynamic/", "scaling/")
/// off an envelope name, in any nesting order, returning the innermost base
/// name ("sharded/dynamic/shbf_x" → "shbf_x").
std::string_view StripWrapperPrefixes(std::string_view name);

/// Registers the built-in filters (defined in adapters.cc); called once by
/// FilterRegistry::Global(). Exposed for tests that build private registries.
void RegisterBuiltinFilters(FilterRegistry* registry);

}  // namespace shbf

#endif  // SHBF_API_FILTER_REGISTRY_H_
