#include "api/filter_spec.h"

#include <cmath>

namespace shbf {

FilterSpec FilterSpec::ForKeys(size_t expected_keys, double bits_per_key,
                               uint32_t num_hashes) {
  FilterSpec spec;
  spec.num_cells = static_cast<size_t>(
      std::ceil(bits_per_key * static_cast<double>(expected_keys)));
  if (spec.num_cells == 0) spec.num_cells = 1;
  spec.num_hashes = num_hashes;
  spec.expected_keys = expected_keys;
  return spec;
}

Status FilterSpec::Validate() const {
  if (num_cells == 0) {
    return Status::InvalidArgument("FilterSpec: num_cells must be positive");
  }
  if (num_hashes == 0) {
    return Status::InvalidArgument("FilterSpec: num_hashes must be positive");
  }
  if (counter_bits < 1 || counter_bits > 32) {
    return Status::InvalidArgument(
        "FilterSpec: counter_bits must be in [1, 32]");
  }
  if (max_count == 0) {
    return Status::InvalidArgument("FilterSpec: max_count must be positive");
  }
  if (num_shifts == 0) {
    return Status::InvalidArgument("FilterSpec: num_shifts must be positive");
  }
  if (batch_size == 0) {
    return Status::InvalidArgument("FilterSpec: batch_size must be positive");
  }
  if (block_bits < 64 || block_bits > 512 ||
      (block_bits & (block_bits - 1)) != 0) {
    return Status::InvalidArgument(
        "FilterSpec: block_bits must be a power of two in [64, 512]");
  }
  if (sub_block_bits < 8 || sub_block_bits > 64 ||
      (sub_block_bits & (sub_block_bits - 1)) != 0) {
    return Status::InvalidArgument(
        "FilterSpec: sub_block_bits must be a power of two in [8, 64]");
  }
  if (shards == 0) {
    return Status::InvalidArgument("FilterSpec: shards must be positive");
  }
  if (delta_capacity > kMaxDeltaCapacity) {
    return Status::InvalidArgument(
        "FilterSpec: delta_capacity exceeds the supported maximum (2^24)");
  }
  return Status::Ok();
}

namespace spec_serde {

void WriteSpec(ByteWriter* writer, const FilterSpec& spec) {
  writer->PutU64(spec.num_cells);
  writer->PutU32(spec.num_hashes);
  writer->PutU32(spec.counter_bits);
  writer->PutU32(spec.max_count);
  writer->PutU32(spec.num_shifts);
  writer->PutU32(spec.bucket_size);
  writer->PutU32(spec.fingerprint_bits);
  writer->PutU32(spec.word_bits);
  writer->PutU64(spec.expected_keys);
  writer->PutU32(spec.batch_size);
  writer->PutU32(spec.shards);
  writer->PutU64(spec.delta_capacity);
  writer->PutU8(spec.auto_scale ? 1 : 0);
  writer->PutU8(static_cast<uint8_t>(spec.hash_algorithm));
  writer->PutU64(spec.seed);
  // Envelope v4 extension: fields appended past the v3 layout.
  writer->PutU32(spec.block_bits);
  // Envelope v5 extension.
  writer->PutU32(spec.sub_block_bits);
}

bool ReadSpec(ByteReader* reader, FilterSpec* spec) {
  uint64_t num_cells = 0;
  uint64_t expected_keys = 0;
  uint64_t delta_capacity = 0;
  uint8_t auto_scale = 0;
  uint8_t alg = 0;
  if (!reader->GetU64(&num_cells) || !reader->GetU32(&spec->num_hashes) ||
      !reader->GetU32(&spec->counter_bits) ||
      !reader->GetU32(&spec->max_count) ||
      !reader->GetU32(&spec->num_shifts) ||
      !reader->GetU32(&spec->bucket_size) ||
      !reader->GetU32(&spec->fingerprint_bits) ||
      !reader->GetU32(&spec->word_bits) || !reader->GetU64(&expected_keys) ||
      !reader->GetU32(&spec->batch_size) || !reader->GetU32(&spec->shards) ||
      !reader->GetU64(&delta_capacity) || !reader->GetU8(&auto_scale) ||
      !reader->GetU8(&alg) || !reader->GetU64(&spec->seed)) {
    return false;
  }
  if (alg > 3 || auto_scale > 1) return false;
  if (!reader->GetU32(&spec->block_bits)) return false;
  if (CurrentSpecWireVersion() >= 5) {
    if (!reader->GetU32(&spec->sub_block_bits)) return false;
  } else {
    // v4 blobs predate the split-block layouts; the default matches what
    // any v4-era factory would have built.
    spec->sub_block_bits = 64;
  }
  spec->num_cells = num_cells;
  spec->expected_keys = expected_keys;
  spec->delta_capacity = delta_capacity;
  spec->auto_scale = auto_scale != 0;
  spec->hash_algorithm = static_cast<HashAlgorithm>(alg);
  return true;
}

namespace {
// Thread-local so concurrent deserializations (e.g. server RELOADs on two
// worker threads) cannot see each other's envelope version.
thread_local int g_spec_wire_version = kSpecWireLatest;
}  // namespace

int CurrentSpecWireVersion() { return g_spec_wire_version; }

SpecWireVersionScope::SpecWireVersionScope(int version)
    : saved_(g_spec_wire_version) {
  g_spec_wire_version = version;
}

SpecWireVersionScope::~SpecWireVersionScope() {
  g_spec_wire_version = saved_;
}

}  // namespace spec_serde
}  // namespace shbf
