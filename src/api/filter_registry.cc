#include "api/filter_registry.h"

#include <algorithm>
#include <chrono>

#include "core/serde.h"
#include "engine/auto_scaling_filter.h"
#include "engine/dynamic_filter.h"
#include "engine/sharded_filter.h"
#include "obs/metrics.h"

namespace shbf {
namespace {

/// Registry envelope: "SHBR" magic, one version byte, a length-prefixed
/// registry name, then the entry-defined payload.
constexpr uint32_t kEnvelopeMagic = 0x52424853;  // "SHBR" little-endian
// v2: FilterSpec wire records grew batch_size/shards mid-record, shifting
// every replay-serde payload. The bump makes v1 blobs fail with a clean
// "unsupported version" instead of deserializing shifted garbage.
// v3: FilterSpec wire records grew delta_capacity/auto_scale (the mutation
// pipeline), again shifting every payload that embeds a spec.
// v4: FilterSpec wire records grew block_bits (the cache-blocked variants),
// appended past the v3 layout.
// v5: FilterSpec wire records grew sub_block_bits (the split-block
// variants), appended past the v4 layout. The v5 reader still accepts v4
// blobs: spec-bearing payloads deserialize under a SpecWireVersionScope so
// mid-payload ReadSpec calls skip the absent trailing field.
constexpr uint8_t kEnvelopeVersion = 5;
constexpr uint8_t kMinReadableEnvelopeVersion = 4;
constexpr size_t kMaxNameLength = 256;

bool ConsumePrefix(std::string_view* name, std::string_view prefix) {
  if (name->substr(0, prefix.size()) != prefix) return false;
  name->remove_prefix(prefix.size());
  return true;
}

/// Times one mapped-storage operation end to end (including validation and
/// checksum verification) into `<name>` — an operation counter rides in the
/// histogram's _count. Scoped so every early-return error path still records.
class StorageTimer {
 public:
  explicit StorageTimer(const char* histogram_name) {
    if (!obs::Enabled()) return;
    histogram_ =
        obs::MetricsRegistry::Global().GetHistogram(histogram_name);
    start_ = std::chrono::steady_clock::now();
  }

  ~StorageTimer() {
    if (histogram_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count()));
  }

 private:
  obs::Histogram* histogram_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace

std::string_view StripWrapperPrefixes(std::string_view name) {
  while (ConsumePrefix(&name, ShardedMembershipFilter::kNamePrefix) ||
         ConsumePrefix(&name, DynamicFilter::kNamePrefix) ||
         ConsumePrefix(&name, AutoScalingFilter::kNamePrefix)) {
  }
  return name;
}

const char* FilterFamilyName(FilterFamily family) {
  switch (family) {
    case FilterFamily::kMembership:   return "membership";
    case FilterFamily::kMultiplicity: return "multiplicity";
    case FilterFamily::kAssociation:  return "association";
  }
  return "invalid";
}

FilterRegistry& FilterRegistry::Global() {
  static FilterRegistry* registry = [] {
    auto* r = new FilterRegistry();
    RegisterBuiltinFilters(r);
    return r;
  }();
  return *registry;
}

Status FilterRegistry::Register(Entry entry) {
  if (entry.name.empty() || entry.name.size() > kMaxNameLength) {
    return Status::InvalidArgument("FilterRegistry: bad entry name");
  }
  if (entry.factory == nullptr) {
    return Status::InvalidArgument("FilterRegistry: entry needs a factory");
  }
  auto [it, inserted] = entries_.emplace(entry.name, std::move(entry));
  if (!inserted) {
    return Status::AlreadyExists("FilterRegistry: duplicate name " +
                                 it->first);
  }
  return Status::Ok();
}

bool FilterRegistry::Has(std::string_view name) const {
  return entries_.find(name) != entries_.end();
}

const FilterRegistry::Entry* FilterRegistry::Find(std::string_view name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> FilterRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;  // std::map iterates sorted
}

std::vector<std::string> FilterRegistry::Names(FilterFamily family) const {
  std::vector<std::string> names;
  for (const auto& [name, entry] : entries_) {
    if (entry.family == family) names.push_back(name);
  }
  return names;
}

Status FilterRegistry::Create(std::string_view name, const FilterSpec& spec,
                              std::unique_ptr<MembershipFilter>* out) const {
  const Entry* entry = Find(name);
  if (entry == nullptr) {
    return Status::NotFound("FilterRegistry: no filter named \"" +
                            std::string(name) + "\"");
  }
  Status valid = spec.Validate();
  if (!valid.ok()) return valid;
  if (spec.shards > 1) {
    // Concurrent front end: shards > 1 asks for a thread-safe hash-
    // partitioned wrapper. Each shard is an independent instance of the
    // entry (with its own dynamic/scaling stack when the spec asks for
    // one), sized so the ensemble matches the spec's total budget. The
    // delta budget splits too: each shard folds independently, so a
    // rebuild pauses one shard for 1/shards of the work while the others
    // keep serving.
    FilterSpec shard_spec = spec;
    shard_spec.shards = 1;
    shard_spec.num_cells = spec.num_cells / spec.shards;
    if (shard_spec.num_cells == 0) shard_spec.num_cells = 1;
    shard_spec.expected_keys = spec.expected_keys / spec.shards;
    if (spec.delta_capacity > 0) {
      shard_spec.delta_capacity = spec.delta_capacity / spec.shards;
      if (shard_spec.delta_capacity == 0) shard_spec.delta_capacity = 1;
    }
    std::vector<std::unique_ptr<MembershipFilter>> shards;
    shards.reserve(spec.shards);
    std::string base_name(name);
    for (uint32_t s = 0; s < spec.shards; ++s) {
      std::unique_ptr<MembershipFilter> shard;
      Status st = CreateSingle(*entry, shard_spec, &shard);
      if (!st.ok()) return st;
      if (s == 0) base_name = std::string(shard->name());
      shards.push_back(std::move(shard));
    }
    // The sharded envelope names the per-shard stack ("sharded/dynamic/
    // shbf_x"), so Deserialize can reconstruct the nesting.
    *out = std::make_unique<ShardedMembershipFilter>(
        base_name, spec.batch_size, std::move(shards));
    return Status::Ok();
  }
  return CreateSingle(*entry, spec, out);
}

Status FilterRegistry::CreateSingle(
    const Entry& entry, const FilterSpec& spec,
    std::unique_ptr<MembershipFilter>* out) const {
  // The spec handed to the base factory (and stored for replay serde) must
  // not re-ask for wrappers, or nested deserializers would wrap twice.
  FilterSpec base_spec = spec;
  base_spec.shards = 1;
  base_spec.delta_capacity = 0;
  base_spec.auto_scale = false;
  std::unique_ptr<MembershipFilter> filter;
  if (spec.auto_scale) {
    const size_t gen_capacity =
        spec.expected_keys > 0
            ? spec.expected_keys
            : std::max<size_t>(size_t{1}, spec.num_cells / 12);
    std::unique_ptr<AutoScalingFilter> scaling;
    Status s = AutoScalingFilter::Create(entry.name, base_spec, *this,
                                         gen_capacity, &scaling);
    if (!s.ok()) return s;
    filter = std::move(scaling);
  } else {
    Status s = entry.factory(base_spec, &filter);
    if (!s.ok()) return s;
  }
  if (spec.delta_capacity > 0) {
    filter = std::make_unique<DynamicFilter>(std::move(filter), base_spec,
                                             spec.delta_capacity);
  }
  *out = std::move(filter);
  return Status::Ok();
}

Status FilterRegistry::CreateMultiplicity(
    std::string_view name, const FilterSpec& spec,
    std::unique_ptr<MultiplicityFilter>* out) const {
  if (spec.shards > 1 || spec.delta_capacity > 0 || spec.auto_scale) {
    // The engine wrappers expose only the membership view; counting /
    // association calls would silently vanish behind them.
    return Status::FailedPrecondition(
        "FilterRegistry: engine wrappers (shards/delta_capacity/auto_scale) "
        "are membership-only (use Create)");
  }
  const Entry* entry = Find(name);
  if (entry != nullptr && entry->family != FilterFamily::kMultiplicity) {
    return Status::FailedPrecondition("FilterRegistry: \"" +
                                      std::string(name) +
                                      "\" is not a multiplicity filter");
  }
  std::unique_ptr<MembershipFilter> base;
  Status s = Create(name, spec, &base);
  if (!s.ok()) return s;
  auto* cast = dynamic_cast<MultiplicityFilter*>(base.get());
  if (cast == nullptr) {
    return Status::Internal("FilterRegistry: family/interface mismatch for " +
                            std::string(name));
  }
  base.release();
  out->reset(cast);
  return Status::Ok();
}

Status FilterRegistry::CreateAssociation(
    std::string_view name, const FilterSpec& spec,
    std::unique_ptr<AssociationFilter>* out) const {
  if (spec.shards > 1 || spec.delta_capacity > 0 || spec.auto_scale) {
    return Status::FailedPrecondition(
        "FilterRegistry: engine wrappers (shards/delta_capacity/auto_scale) "
        "are membership-only (use Create)");
  }
  const Entry* entry = Find(name);
  if (entry != nullptr && entry->family != FilterFamily::kAssociation) {
    return Status::FailedPrecondition("FilterRegistry: \"" +
                                      std::string(name) +
                                      "\" is not an association filter");
  }
  std::unique_ptr<MembershipFilter> base;
  Status s = Create(name, spec, &base);
  if (!s.ok()) return s;
  auto* cast = dynamic_cast<AssociationFilter*>(base.get());
  if (cast == nullptr) {
    return Status::Internal("FilterRegistry: family/interface mismatch for " +
                            std::string(name));
  }
  base.release();
  out->reset(cast);
  return Status::Ok();
}

std::string FilterRegistry::Serialize(const MembershipFilter& filter) {
  ByteWriter writer;
  writer.PutU32(kEnvelopeMagic);
  writer.PutU8(kEnvelopeVersion);
  std::string_view name = filter.name();
  writer.PutU32(static_cast<uint32_t>(name.size()));
  writer.PutBytes(name.data(), name.size());
  std::string payload = filter.ToBytes();
  writer.PutBytes(payload.data(), payload.size());
  return writer.Take();
}

Status FilterRegistry::Deserialize(
    std::string_view bytes, std::unique_ptr<MembershipFilter>* out) const {
  ByteReader reader(bytes);
  uint32_t magic = 0;
  uint8_t version = 0;
  uint32_t name_length = 0;
  if (!reader.GetU32(&magic) || magic != kEnvelopeMagic) {
    return Status::InvalidArgument("FilterRegistry: bad envelope magic");
  }
  if (!reader.GetU8(&version)) {
    return Status::InvalidArgument("FilterRegistry: truncated envelope");
  }
  if (version < kMinReadableEnvelopeVersion || version > kEnvelopeVersion) {
    // The name field's layout has been stable across every envelope
    // version, so surface which filter the stale/foreign blob carries —
    // "unsupported version" alone sends the operator grepping hex dumps.
    std::string context;
    uint32_t stale_length = 0;
    if (reader.GetU32(&stale_length) && stale_length > 0 &&
        stale_length <= kMaxNameLength && stale_length <= reader.remaining()) {
      std::string stale_name(stale_length, '\0');
      if (reader.GetBytes(stale_name.data(), stale_length)) {
        context = " for filter \"" + stale_name + "\"";
      }
    }
    return Status::InvalidArgument(
        "FilterRegistry: unsupported envelope version " +
        std::to_string(version) + " (supported: " +
        std::to_string(kMinReadableEnvelopeVersion) + ".." +
        std::to_string(kEnvelopeVersion) + ")" + context +
        "; rebuild the blob with this library version");
  }
  if (!reader.GetU32(&name_length) || name_length == 0 ||
      name_length > kMaxNameLength || name_length > reader.remaining()) {
    return Status::InvalidArgument("FilterRegistry: bad envelope name");
  }
  std::string name(name_length, '\0');
  if (!reader.GetBytes(name.data(), name_length)) {
    return Status::InvalidArgument("FilterRegistry: truncated envelope");
  }
  std::string_view payload = bytes.substr(bytes.size() - reader.remaining());
  // Spec records sit mid-payload (replay adapters, wrapper internals), so
  // the envelope version must reach every nested ReadSpec call. Nested
  // envelopes (sharded shards) re-enter Deserialize and install their own
  // scope — each blob reads under its own header's version.
  spec_serde::SpecWireVersionScope spec_version_scope(version);
  const std::string_view name_view(name);
  if (name_view.substr(0, ShardedMembershipFilter::kNamePrefix.size()) ==
          ShardedMembershipFilter::kNamePrefix ||
      name_view.substr(0, DynamicFilter::kNamePrefix.size()) ==
          DynamicFilter::kNamePrefix ||
      name_view.substr(0, AutoScalingFilter::kNamePrefix.size()) ==
          AutoScalingFilter::kNamePrefix) {
    // Wrapper envelopes ("sharded/...", "dynamic/...", "scaling/...") are
    // handled structurally: the payload embeds nested envelopes this method
    // reconstructs recursively. The innermost base name must still be
    // registered — check it here, where the error can say so cleanly.
    std::string_view base = StripWrapperPrefixes(name_view);
    if (Find(base) == nullptr) {
      return Status::NotFound(
          "FilterRegistry: wrapper blob names unknown base filter \"" +
          std::string(base) + "\"");
    }
    if (name_view.substr(0, ShardedMembershipFilter::kNamePrefix.size()) ==
        ShardedMembershipFilter::kNamePrefix) {
      return ShardedMembershipFilter::Deserialize(name, payload, *this, out);
    }
    if (name_view.substr(0, DynamicFilter::kNamePrefix.size()) ==
        DynamicFilter::kNamePrefix) {
      return DynamicFilter::Deserialize(name, payload, *this, out);
    }
    return AutoScalingFilter::Deserialize(name, payload, *this, out);
  }
  const Entry* entry = Find(name);
  if (entry == nullptr) {
    return Status::NotFound("FilterRegistry: blob names unknown filter \"" +
                            name + "\"");
  }
  if (entry->deserializer == nullptr) {
    return Status::FailedPrecondition("FilterRegistry: \"" + name +
                                      "\" does not support deserialization");
  }
  return entry->deserializer(payload, out);
}

bool FilterRegistry::SupportsMapped(std::string_view name) const {
  const Entry* entry = Find(name);
  return entry != nullptr && entry->mapped_saver != nullptr &&
         entry->mapped_opener != nullptr;
}

Status FilterRegistry::SaveMapped(const MembershipFilter& filter,
                                  const std::string& path,
                                  uint64_t generation) const {
  StorageTimer timer("storage.mapped_save_us");
  // A mapped filter re-saves transparently (snapshot of an mmap-served
  // filter): the saver needs the concrete adapter it wraps.
  const MembershipFilter* source = &filter;
  if (const auto* mapped = dynamic_cast<const storage::MappedFilter*>(source)) {
    source = &mapped->inner();
  }
  const std::string name(source->name());
  const Entry* entry = Find(name);
  if (entry == nullptr) {
    return Status::NotFound("SaveMapped: no filter named \"" + name + "\"");
  }
  if (entry->mapped_saver == nullptr) {
    return Status::FailedPrecondition(
        "SaveMapped: \"" + name +
        "\" has no flat image layout (heap serde only)");
  }
  storage::ImageHeader header;
  header.generation = generation;
  header.filter_name = name;
  std::vector<storage::RegionPayload> payloads;
  Status s = entry->mapped_saver(*source, &header, &payloads);
  if (!s.ok()) return s;
  return storage::WriteImageFile(path, &header, payloads);
}

Status FilterRegistry::OpenMapped(const std::string& path,
                                  std::unique_ptr<MembershipFilter>* out,
                                  const storage::OpenOptions& options) const {
  StorageTimer timer("storage.mapped_open_us");
  storage::MappedFile file;
  Status s = storage::MappedFile::OpenReadOnly(path, &file);
  if (!s.ok()) return s;
  // Everything below reads the immutable mapping — the header is validated
  // against, and the filter built over, the same bytes (no reopen, no
  // TOCTOU window against a concurrent SaveMapped's rename).
  storage::ImageHeader header;
  s = storage::DecodeImageHeader(file.data(), file.size(), &header);
  if (!s.ok()) {
    return Status::InvalidArgument("OpenMapped " + path + ": " + s.message());
  }
  const Entry* entry = Find(header.filter_name);
  if (entry == nullptr) {
    return Status::NotFound("OpenMapped " + path +
                            ": field name: unknown filter \"" +
                            header.filter_name + "\"");
  }
  if (entry->mapped_opener == nullptr) {
    return Status::FailedPrecondition("OpenMapped " + path + ": \"" +
                                      header.filter_name +
                                      "\" has no flat image layout");
  }
  if (options.verify_payload) {
    for (size_t i = 0; i < header.regions.size(); ++i) {
      s = storage::VerifyRegionChecksum(header, i, file.data());
      if (!s.ok()) {
        return Status::InvalidArgument("OpenMapped " + path + ": " +
                                       s.message());
      }
    }
  }
  std::vector<storage::MappedRegionView> regions;
  regions.reserve(header.regions.size());
  for (const storage::RegionDesc& region : header.regions) {
    regions.push_back({file.data() + region.offset,
                       static_cast<size_t>(region.bytes)});
  }
  std::unique_ptr<MembershipFilter> inner;
  s = entry->mapped_opener(header, regions, &inner);
  if (!s.ok()) {
    return Status::InvalidArgument("OpenMapped " + path + ": " + s.message());
  }
  *out = std::make_unique<storage::MappedFilter>(
      std::move(file), std::move(inner), header.generation);
  return Status::Ok();
}

}  // namespace shbf
