#include "api/filter_registry.h"

#include <algorithm>

#include "core/serde.h"
#include "engine/sharded_filter.h"

namespace shbf {
namespace {

/// Registry envelope: "SHBR" magic, one version byte, a length-prefixed
/// registry name, then the entry-defined payload.
constexpr uint32_t kEnvelopeMagic = 0x52424853;  // "SHBR" little-endian
// v2: FilterSpec wire records grew batch_size/shards mid-record, shifting
// every replay-serde payload. The bump makes v1 blobs fail with a clean
// "unsupported version" instead of deserializing shifted garbage.
constexpr uint8_t kEnvelopeVersion = 2;
constexpr size_t kMaxNameLength = 256;

}  // namespace

const char* FilterFamilyName(FilterFamily family) {
  switch (family) {
    case FilterFamily::kMembership:   return "membership";
    case FilterFamily::kMultiplicity: return "multiplicity";
    case FilterFamily::kAssociation:  return "association";
  }
  return "invalid";
}

FilterRegistry& FilterRegistry::Global() {
  static FilterRegistry* registry = [] {
    auto* r = new FilterRegistry();
    RegisterBuiltinFilters(r);
    return r;
  }();
  return *registry;
}

Status FilterRegistry::Register(Entry entry) {
  if (entry.name.empty() || entry.name.size() > kMaxNameLength) {
    return Status::InvalidArgument("FilterRegistry: bad entry name");
  }
  if (entry.factory == nullptr) {
    return Status::InvalidArgument("FilterRegistry: entry needs a factory");
  }
  auto [it, inserted] = entries_.emplace(entry.name, std::move(entry));
  if (!inserted) {
    return Status::AlreadyExists("FilterRegistry: duplicate name " +
                                 it->first);
  }
  return Status::Ok();
}

bool FilterRegistry::Has(std::string_view name) const {
  return entries_.find(name) != entries_.end();
}

const FilterRegistry::Entry* FilterRegistry::Find(std::string_view name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> FilterRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;  // std::map iterates sorted
}

std::vector<std::string> FilterRegistry::Names(FilterFamily family) const {
  std::vector<std::string> names;
  for (const auto& [name, entry] : entries_) {
    if (entry.family == family) names.push_back(name);
  }
  return names;
}

Status FilterRegistry::Create(std::string_view name, const FilterSpec& spec,
                              std::unique_ptr<MembershipFilter>* out) const {
  const Entry* entry = Find(name);
  if (entry == nullptr) {
    return Status::NotFound("FilterRegistry: no filter named \"" +
                            std::string(name) + "\"");
  }
  Status valid = spec.Validate();
  if (!valid.ok()) return valid;
  if (spec.shards > 1) {
    // Concurrent front end: shards > 1 asks for a thread-safe hash-
    // partitioned wrapper. Each shard is an independent instance of the
    // entry, sized so the ensemble matches the spec's total budget.
    FilterSpec shard_spec = spec;
    shard_spec.shards = 1;
    shard_spec.num_cells = spec.num_cells / spec.shards;
    if (shard_spec.num_cells == 0) shard_spec.num_cells = 1;
    shard_spec.expected_keys = spec.expected_keys / spec.shards;
    std::vector<std::unique_ptr<MembershipFilter>> shards;
    shards.reserve(spec.shards);
    for (uint32_t s = 0; s < spec.shards; ++s) {
      std::unique_ptr<MembershipFilter> shard;
      Status st = entry->factory(shard_spec, &shard);
      if (!st.ok()) return st;
      shards.push_back(std::move(shard));
    }
    *out = std::make_unique<ShardedMembershipFilter>(
        std::string(name), spec.batch_size, std::move(shards));
    return Status::Ok();
  }
  return entry->factory(spec, out);
}

Status FilterRegistry::CreateMultiplicity(
    std::string_view name, const FilterSpec& spec,
    std::unique_ptr<MultiplicityFilter>* out) const {
  if (spec.shards > 1) {
    // The sharded wrapper exposes only the membership view; counting /
    // association calls would silently vanish behind it.
    return Status::FailedPrecondition(
        "FilterRegistry: shards > 1 is membership-only (use Create)");
  }
  const Entry* entry = Find(name);
  if (entry != nullptr && entry->family != FilterFamily::kMultiplicity) {
    return Status::FailedPrecondition("FilterRegistry: \"" +
                                      std::string(name) +
                                      "\" is not a multiplicity filter");
  }
  std::unique_ptr<MembershipFilter> base;
  Status s = Create(name, spec, &base);
  if (!s.ok()) return s;
  auto* cast = dynamic_cast<MultiplicityFilter*>(base.get());
  if (cast == nullptr) {
    return Status::Internal("FilterRegistry: family/interface mismatch for " +
                            std::string(name));
  }
  base.release();
  out->reset(cast);
  return Status::Ok();
}

Status FilterRegistry::CreateAssociation(
    std::string_view name, const FilterSpec& spec,
    std::unique_ptr<AssociationFilter>* out) const {
  if (spec.shards > 1) {
    return Status::FailedPrecondition(
        "FilterRegistry: shards > 1 is membership-only (use Create)");
  }
  const Entry* entry = Find(name);
  if (entry != nullptr && entry->family != FilterFamily::kAssociation) {
    return Status::FailedPrecondition("FilterRegistry: \"" +
                                      std::string(name) +
                                      "\" is not an association filter");
  }
  std::unique_ptr<MembershipFilter> base;
  Status s = Create(name, spec, &base);
  if (!s.ok()) return s;
  auto* cast = dynamic_cast<AssociationFilter*>(base.get());
  if (cast == nullptr) {
    return Status::Internal("FilterRegistry: family/interface mismatch for " +
                            std::string(name));
  }
  base.release();
  out->reset(cast);
  return Status::Ok();
}

std::string FilterRegistry::Serialize(const MembershipFilter& filter) {
  ByteWriter writer;
  writer.PutU32(kEnvelopeMagic);
  writer.PutU8(kEnvelopeVersion);
  std::string_view name = filter.name();
  writer.PutU32(static_cast<uint32_t>(name.size()));
  writer.PutBytes(name.data(), name.size());
  std::string payload = filter.ToBytes();
  writer.PutBytes(payload.data(), payload.size());
  return writer.Take();
}

Status FilterRegistry::Deserialize(
    std::string_view bytes, std::unique_ptr<MembershipFilter>* out) const {
  ByteReader reader(bytes);
  uint32_t magic = 0;
  uint8_t version = 0;
  uint32_t name_length = 0;
  if (!reader.GetU32(&magic) || magic != kEnvelopeMagic) {
    return Status::InvalidArgument("FilterRegistry: bad envelope magic");
  }
  if (!reader.GetU8(&version) || version != kEnvelopeVersion) {
    return Status::InvalidArgument("FilterRegistry: unsupported version");
  }
  if (!reader.GetU32(&name_length) || name_length == 0 ||
      name_length > kMaxNameLength || name_length > reader.remaining()) {
    return Status::InvalidArgument("FilterRegistry: bad envelope name");
  }
  std::string name(name_length, '\0');
  if (!reader.GetBytes(name.data(), name_length)) {
    return Status::InvalidArgument("FilterRegistry: truncated envelope");
  }
  std::string_view payload = bytes.substr(bytes.size() - reader.remaining());
  if (std::string_view(name).substr(
          0, ShardedMembershipFilter::kNamePrefix.size()) ==
      ShardedMembershipFilter::kNamePrefix) {
    // Sharded envelopes ("sharded/<base>") are handled structurally: the
    // payload is a sequence of per-shard envelopes this method reconstructs
    // recursively. The base name must still be registered.
    std::string_view base =
        std::string_view(name).substr(
            ShardedMembershipFilter::kNamePrefix.size());
    if (Find(base) == nullptr) {
      return Status::NotFound(
          "FilterRegistry: sharded blob names unknown base filter \"" +
          std::string(base) + "\"");
    }
    return ShardedMembershipFilter::Deserialize(name, payload, *this, out);
  }
  const Entry* entry = Find(name);
  if (entry == nullptr) {
    return Status::NotFound("FilterRegistry: blob names unknown filter \"" +
                            name + "\"");
  }
  if (entry->deserializer == nullptr) {
    return Status::FailedPrecondition("FilterRegistry: \"" + name +
                                      "\" does not support deserialization");
  }
  return entry->deserializer(payload, out);
}

}  // namespace shbf
