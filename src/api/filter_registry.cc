#include "api/filter_registry.h"

#include <algorithm>

#include "core/serde.h"

namespace shbf {
namespace {

/// Registry envelope: "SHBR" magic, one version byte, a length-prefixed
/// registry name, then the entry-defined payload.
constexpr uint32_t kEnvelopeMagic = 0x52424853;  // "SHBR" little-endian
constexpr uint8_t kEnvelopeVersion = 1;
constexpr size_t kMaxNameLength = 256;

}  // namespace

const char* FilterFamilyName(FilterFamily family) {
  switch (family) {
    case FilterFamily::kMembership:   return "membership";
    case FilterFamily::kMultiplicity: return "multiplicity";
    case FilterFamily::kAssociation:  return "association";
  }
  return "invalid";
}

FilterRegistry& FilterRegistry::Global() {
  static FilterRegistry* registry = [] {
    auto* r = new FilterRegistry();
    RegisterBuiltinFilters(r);
    return r;
  }();
  return *registry;
}

Status FilterRegistry::Register(Entry entry) {
  if (entry.name.empty() || entry.name.size() > kMaxNameLength) {
    return Status::InvalidArgument("FilterRegistry: bad entry name");
  }
  if (entry.factory == nullptr) {
    return Status::InvalidArgument("FilterRegistry: entry needs a factory");
  }
  auto [it, inserted] = entries_.emplace(entry.name, std::move(entry));
  if (!inserted) {
    return Status::AlreadyExists("FilterRegistry: duplicate name " +
                                 it->first);
  }
  return Status::Ok();
}

bool FilterRegistry::Has(std::string_view name) const {
  return entries_.find(name) != entries_.end();
}

const FilterRegistry::Entry* FilterRegistry::Find(std::string_view name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> FilterRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;  // std::map iterates sorted
}

std::vector<std::string> FilterRegistry::Names(FilterFamily family) const {
  std::vector<std::string> names;
  for (const auto& [name, entry] : entries_) {
    if (entry.family == family) names.push_back(name);
  }
  return names;
}

Status FilterRegistry::Create(std::string_view name, const FilterSpec& spec,
                              std::unique_ptr<MembershipFilter>* out) const {
  const Entry* entry = Find(name);
  if (entry == nullptr) {
    return Status::NotFound("FilterRegistry: no filter named \"" +
                            std::string(name) + "\"");
  }
  Status valid = spec.Validate();
  if (!valid.ok()) return valid;
  return entry->factory(spec, out);
}

Status FilterRegistry::CreateMultiplicity(
    std::string_view name, const FilterSpec& spec,
    std::unique_ptr<MultiplicityFilter>* out) const {
  const Entry* entry = Find(name);
  if (entry != nullptr && entry->family != FilterFamily::kMultiplicity) {
    return Status::FailedPrecondition("FilterRegistry: \"" +
                                      std::string(name) +
                                      "\" is not a multiplicity filter");
  }
  std::unique_ptr<MembershipFilter> base;
  Status s = Create(name, spec, &base);
  if (!s.ok()) return s;
  auto* cast = dynamic_cast<MultiplicityFilter*>(base.get());
  if (cast == nullptr) {
    return Status::Internal("FilterRegistry: family/interface mismatch for " +
                            std::string(name));
  }
  base.release();
  out->reset(cast);
  return Status::Ok();
}

Status FilterRegistry::CreateAssociation(
    std::string_view name, const FilterSpec& spec,
    std::unique_ptr<AssociationFilter>* out) const {
  const Entry* entry = Find(name);
  if (entry != nullptr && entry->family != FilterFamily::kAssociation) {
    return Status::FailedPrecondition("FilterRegistry: \"" +
                                      std::string(name) +
                                      "\" is not an association filter");
  }
  std::unique_ptr<MembershipFilter> base;
  Status s = Create(name, spec, &base);
  if (!s.ok()) return s;
  auto* cast = dynamic_cast<AssociationFilter*>(base.get());
  if (cast == nullptr) {
    return Status::Internal("FilterRegistry: family/interface mismatch for " +
                            std::string(name));
  }
  base.release();
  out->reset(cast);
  return Status::Ok();
}

std::string FilterRegistry::Serialize(const MembershipFilter& filter) {
  ByteWriter writer;
  writer.PutU32(kEnvelopeMagic);
  writer.PutU8(kEnvelopeVersion);
  std::string_view name = filter.name();
  writer.PutU32(static_cast<uint32_t>(name.size()));
  writer.PutBytes(name.data(), name.size());
  std::string payload = filter.ToBytes();
  writer.PutBytes(payload.data(), payload.size());
  return writer.Take();
}

Status FilterRegistry::Deserialize(
    std::string_view bytes, std::unique_ptr<MembershipFilter>* out) const {
  ByteReader reader(bytes);
  uint32_t magic = 0;
  uint8_t version = 0;
  uint32_t name_length = 0;
  if (!reader.GetU32(&magic) || magic != kEnvelopeMagic) {
    return Status::InvalidArgument("FilterRegistry: bad envelope magic");
  }
  if (!reader.GetU8(&version) || version != kEnvelopeVersion) {
    return Status::InvalidArgument("FilterRegistry: unsupported version");
  }
  if (!reader.GetU32(&name_length) || name_length == 0 ||
      name_length > kMaxNameLength || name_length > reader.remaining()) {
    return Status::InvalidArgument("FilterRegistry: bad envelope name");
  }
  std::string name(name_length, '\0');
  if (!reader.GetBytes(name.data(), name_length)) {
    return Status::InvalidArgument("FilterRegistry: truncated envelope");
  }
  const Entry* entry = Find(name);
  if (entry == nullptr) {
    return Status::NotFound("FilterRegistry: blob names unknown filter \"" +
                            name + "\"");
  }
  if (entry->deserializer == nullptr) {
    return Status::FailedPrecondition("FilterRegistry: \"" + name +
                                      "\" does not support deserialization");
  }
  return entry->deserializer(bytes.substr(bytes.size() - reader.remaining()),
                             out);
}

}  // namespace shbf
