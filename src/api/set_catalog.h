// SetCatalog — the named collection of filters the multi-set subsystem
// (src/multiset/) indexes: "which of my N sets contain key k" needs the N
// sets to be first-class objects with stable identities, not ad-hoc locals.
//
// Each set is a (stable id, unique name, MembershipFilter) triple. Ids are
// assigned monotonically and never reused — a dropped set's id stays dead —
// so a SetIdBitmap produced before a drop still names the same sets after
// it, and serialized catalogs re-open with identical ids on any machine.
//
// The catalog serializes into its own self-describing envelope ("SHBC"
// magic + version) whose per-set payloads are nested FilterRegistry
// envelopes, so any registered backend (or wrapper stack) can be a set.
// Deserialize validates counts and lengths against the remaining input
// before any allocation, mirroring serde::ReadKeyList's count-bomb guard.

#ifndef SHBF_API_SET_CATALOG_H_
#define SHBF_API_SET_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/filter_registry.h"
#include "api/set_query_filter.h"
#include "core/status.h"

namespace shbf {

class SetCatalog {
 public:
  /// Hard ceilings the deserializer enforces before allocating. kMaxSets
  /// bounds the whole id SPACE, not just the live count: ids are never
  /// reused, so id_bound() — and every SetIdBitmap sized from it — stays
  /// under kMaxSets for the catalog's entire add/drop history.
  static constexpr size_t kMaxSets = size_t{1} << 20;
  static constexpr size_t kMaxNameBytes = 256;

  struct SetEntry {
    uint32_t id = 0;
    std::string name;
    std::unique_ptr<MembershipFilter> filter;
  };

  SetCatalog() = default;
  SetCatalog(SetCatalog&&) = default;
  SetCatalog& operator=(SetCatalog&&) = default;
  SetCatalog(const SetCatalog&) = delete;
  SetCatalog& operator=(const SetCatalog&) = delete;

  /// Registers `filter` under `name` with the next free id (returned via
  /// `*id` when non-null). Fails on an empty/oversized/duplicate name, a
  /// null filter, or a full catalog.
  Status AddSet(std::string name, std::unique_ptr<MembershipFilter> filter,
                uint32_t* id = nullptr);

  /// Removes the set; its id is never reused.
  Status DropSet(std::string_view name);

  /// Renames a set in place (same id, same filter).
  Status RenameSet(std::string_view from, std::string to);

  const SetEntry* Find(std::string_view name) const;
  const SetEntry* FindById(uint32_t id) const;

  /// Mutable filter access for maintenance paths (INDEX_ADD); nullptr for a
  /// dead id.
  MembershipFilter* MutableFilter(uint32_t id);

  size_t size() const { return by_id_.size(); }
  bool empty() const { return by_id_.empty(); }

  /// One past the largest id ever assigned — the SetIdBitmap universe.
  uint32_t id_bound() const { return next_id_; }

  /// Entries ordered by id (the canonical iteration order everywhere:
  /// serde, index build, LIST responses).
  std::vector<const SetEntry*> Entries() const;

  /// Sum of the member filters' footprints.
  size_t memory_bytes() const;

  /// Self-describing blob: catalog envelope wrapping one nested
  /// FilterRegistry envelope per set.
  std::string Serialize() const;

  /// Reconstructs a Serialize() blob; every per-set payload dispatches
  /// through `registry`. Returns Status (never crashes) on truncated,
  /// corrupt or count-bombed input; `*out` is untouched on failure.
  static Status Deserialize(std::string_view bytes,
                            const FilterRegistry& registry, SetCatalog* out);

 private:
  uint32_t next_id_ = 0;
  /// Owning map, ordered by id; names index into it.
  std::map<uint32_t, SetEntry> by_id_;
  std::map<std::string, uint32_t, std::less<>> id_by_name_;
};

}  // namespace shbf

#endif  // SHBF_API_SET_CATALOG_H_
