// FilterSpec — one parameter struct every registry factory understands.
//
// Each concrete filter has its own Params with scheme-specific knobs; a
// uniform driver loop cannot fill in fifteen different structs. FilterSpec
// names the shared vocabulary (cells, hashes, counter width, seed, ...) and
// each factory derives the nearest valid concrete Params from it: shbf_m
// rounds num_hashes up to even, shbf_g to a multiple of t + 1, the sketches
// split num_cells into depth × width, the cuckoo filter converts it into a
// bucket count, and so on. Derivations are documented per entry in
// adapters.cc.

#ifndef SHBF_API_FILTER_SPEC_H_
#define SHBF_API_FILTER_SPEC_H_

#include <cstddef>
#include <cstdint>

#include "core/serde.h"
#include "core/status.h"
#include "hash/hash_family.h"

namespace shbf {

/// The shared construction vocabulary every registry factory understands;
/// see the file comment for how factories derive concrete params from it.
struct FilterSpec {
  /// m: the number of logical cells — bits for bit-array filters, counters
  /// for counting structures and sketches. The primary size knob.
  size_t num_cells = 0;

  /// k: hash functions / probes per element (factories round to validity).
  uint32_t num_hashes = 8;

  /// Counter width for counting structures (clamped per scheme).
  uint32_t counter_bits = 8;

  /// Largest representable multiplicity (shbf_x family).
  uint32_t max_count = 64;

  /// t: shifting operations for the generalized ShBF (shbf_g).
  uint32_t num_shifts = 2;

  /// Cuckoo-filter geometry.
  uint32_t bucket_size = 4;
  uint32_t fingerprint_bits = 12;

  /// Word size for the one-memory-access BF.
  uint32_t word_bits = 64;

  /// Block size for the cache-blocked variants (blocked_bloom,
  /// blocked_shbf_m): all of a key's probes are confined to one block of
  /// this many bits. Power of two in [64, 512]; 512 = one cache line.
  /// Ignored by the unblocked schemes.
  uint32_t block_bits = 512;

  /// Sub-word width of the split-block variants (split_block_bloom,
  /// split_block_shbf_m): each probe/pair owns one sub-word of this many
  /// bits inside its block, which is what makes the one-vector-op resolve
  /// possible. Power of two in [8, 64] (the shbf_m layout needs >= 16);
  /// the factories size block_bits from k and this. Ignored elsewhere.
  uint32_t sub_block_bits = 64;

  /// Optional capacity hint; when nonzero the cuckoo factory sizes buckets
  /// from it instead of num_cells.
  size_t expected_keys = 0;

  /// Keys per prefetch group in the batched query engine
  /// (engine/batch_query_engine.h); also the group size of the sharded
  /// wrapper's internal engine. 16–64 covers the useful range.
  uint32_t batch_size = 16;

  /// Shards of the concurrent wrapper (engine/sharded_filter.h). 1 builds
  /// the plain single-shard filter; > 1 makes FilterRegistry::Create return
  /// a thread-safe ShardedMembershipFilter whose shards split num_cells and
  /// expected_keys evenly (total memory stays what the spec asked for).
  uint32_t shards = 1;

  /// Hard ceiling on delta_capacity (16M pending mutations — the delta's
  /// geometry is derived from it, so both Validate and the dynamic
  /// deserializer bound it to keep a small blob from demanding an absurd
  /// allocation).
  static constexpr size_t kMaxDeltaCapacity = size_t{1} << 24;

  /// Pending-mutation budget of the dynamic wrapper
  /// (engine/dynamic_filter.h). 0 builds the plain filter; > 0 makes
  /// FilterRegistry::Create return a DynamicFilter ("dynamic/<base>") that
  /// absorbs adds into a small counting delta and folds them into the
  /// immutable active filter every `delta_capacity` mutations (one epoch) —
  /// the knob that makes bulk-built filters (shbf_x, shbf_a) usable under
  /// interleaved add/query traffic. With shards > 1, each shard gets its own
  /// wrapper with a proportional share of this budget (bounded pause per
  /// shard).
  size_t delta_capacity = 0;

  /// Chain fixed-FPR generations when elements exceed the capacity budget
  /// (engine/auto_scaling_filter.h): the active side becomes an
  /// AutoScalingFilter ("scaling/<base>") that seals the current generation
  /// at its capacity (expected_keys, else num_cells / 12) and opens a
  /// doubled one, so FPR stays bounded under unbounded growth.
  bool auto_scale = false;

  /// Hash family every derived filter draws its functions from.
  HashAlgorithm hash_algorithm = HashAlgorithm::kMurmur3;

  /// Master seed of that family (experiments are replayable given the spec).
  uint64_t seed = 0x5eed5eed5eed5eedull;

  /// Spec sized for `expected_keys` keys at `bits_per_key` bits each.
  static FilterSpec ForKeys(size_t expected_keys, double bits_per_key,
                            uint32_t num_hashes);

  /// Rejects impossible parameter combinations (zero cells/hashes/shards,
  /// out-of-range counter widths) before any factory runs.
  Status Validate() const;
};

namespace spec_serde {

/// The spec wire layout version written by WriteSpec — tracks the registry
/// envelope version (filter_registry.cc) for the versions that extended the
/// spec record: v4 appended block_bits, v5 appended sub_block_bits.
inline constexpr int kSpecWireLatest = 5;

/// Fixed-layout FilterSpec codec used by adapter-level (replay) serde.
/// WriteSpec always writes the latest layout; ReadSpec honors the wire
/// version of the enclosing envelope (see SpecWireVersionScope), defaulting
/// missing trailing fields, so pre-v5 blobs keep loading.
void WriteSpec(ByteWriter* writer, const FilterSpec& spec);
bool ReadSpec(ByteReader* reader, FilterSpec* spec);

/// The envelope version the current deserialization runs under (defaults
/// to kSpecWireLatest when no scope is active).
int CurrentSpecWireVersion();

/// Thread-local RAII scope the registry wraps around payload dispatch:
/// spec records sit mid-payload at several nesting depths (wrappers,
/// shards), so "are the v5 fields present" cannot be inferred from the
/// reader position — the envelope header decides, and nested envelopes
/// each install their own scope.
class SpecWireVersionScope {
 public:
  explicit SpecWireVersionScope(int version);
  ~SpecWireVersionScope();

  SpecWireVersionScope(const SpecWireVersionScope&) = delete;
  SpecWireVersionScope& operator=(const SpecWireVersionScope&) = delete;

 private:
  int saved_;
};

}  // namespace spec_serde
}  // namespace shbf

#endif  // SHBF_API_FILTER_SPEC_H_
