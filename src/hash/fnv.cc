#include "hash/fnv.h"

namespace shbf {

uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ull ^ seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ull;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

}  // namespace shbf
