// MurmurHash3 x64-128 (Austin Appleby, public domain algorithm),
// reimplemented from the published finalization constants. Used as the
// default high-quality 64-bit hash for the filters.

#ifndef SHBF_HASH_MURMUR3_H_
#define SHBF_HASH_MURMUR3_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <utility>

namespace shbf {

namespace murmur3_detail {

inline uint64_t Rotl64(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

inline uint64_t FMix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdull;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ull;
  k ^= k >> 33;
  return k;
}

inline uint64_t Load64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace murmur3_detail

/// Full 128-bit result as (low, high). Defined inline so the one hash pass
/// a split-block probe derivation makes folds into its caller — short keys
/// take the tail switch only, and the call/spill overhead per key is what
/// the batched split-block paths are bounded by.
inline std::pair<uint64_t, uint64_t> Murmur3_128(const void* data, size_t len,
                                                 uint64_t seed) {
  using murmur3_detail::FMix64;
  using murmur3_detail::Load64;
  using murmur3_detail::Rotl64;
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  const size_t nblocks = len / 16;

  uint64_t h1 = seed;
  uint64_t h2 = seed;
  const uint64_t c1 = 0x87c37b91114253d5ull;
  const uint64_t c2 = 0x4cf5ad432745937full;

  for (size_t i = 0; i < nblocks; ++i) {
    uint64_t k1 = Load64(bytes + i * 16);
    uint64_t k2 = Load64(bytes + i * 16 + 8);

    k1 *= c1; k1 = Rotl64(k1, 31); k1 *= c2; h1 ^= k1;
    h1 = Rotl64(h1, 27); h1 += h2; h1 = h1 * 5 + 0x52dce729;
    k2 *= c2; k2 = Rotl64(k2, 33); k2 *= c1; h2 ^= k2;
    h2 = Rotl64(h2, 31); h2 += h1; h2 = h2 * 5 + 0x38495ab5;
  }

  const uint8_t* tail = bytes + nblocks * 16;
  uint64_t k1 = 0;
  uint64_t k2 = 0;
  switch (len & 15) {
    case 15: k2 ^= static_cast<uint64_t>(tail[14]) << 48; [[fallthrough]];
    case 14: k2 ^= static_cast<uint64_t>(tail[13]) << 40; [[fallthrough]];
    case 13: k2 ^= static_cast<uint64_t>(tail[12]) << 32; [[fallthrough]];
    case 12: k2 ^= static_cast<uint64_t>(tail[11]) << 24; [[fallthrough]];
    case 11: k2 ^= static_cast<uint64_t>(tail[10]) << 16; [[fallthrough]];
    case 10: k2 ^= static_cast<uint64_t>(tail[9]) << 8; [[fallthrough]];
    case 9:
      k2 ^= static_cast<uint64_t>(tail[8]);
      k2 *= c2; k2 = Rotl64(k2, 33); k2 *= c1; h2 ^= k2;
      [[fallthrough]];
    case 8: k1 ^= static_cast<uint64_t>(tail[7]) << 56; [[fallthrough]];
    case 7: k1 ^= static_cast<uint64_t>(tail[6]) << 48; [[fallthrough]];
    case 6: k1 ^= static_cast<uint64_t>(tail[5]) << 40; [[fallthrough]];
    case 5: k1 ^= static_cast<uint64_t>(tail[4]) << 32; [[fallthrough]];
    case 4: k1 ^= static_cast<uint64_t>(tail[3]) << 24; [[fallthrough]];
    case 3: k1 ^= static_cast<uint64_t>(tail[2]) << 16; [[fallthrough]];
    case 2: k1 ^= static_cast<uint64_t>(tail[1]) << 8; [[fallthrough]];
    case 1:
      k1 ^= static_cast<uint64_t>(tail[0]);
      k1 *= c1; k1 = Rotl64(k1, 31); k1 *= c2; h1 ^= k1;
      break;
    default:
      break;
  }

  h1 ^= static_cast<uint64_t>(len);
  h2 ^= static_cast<uint64_t>(len);
  h1 += h2;
  h2 += h1;
  h1 = FMix64(h1);
  h2 = FMix64(h2);
  h1 += h2;
  h2 += h1;
  return {h1, h2};
}

/// Low 64 bits of the 128-bit result.
uint64_t Murmur3_64(const void* data, size_t len, uint64_t seed);

inline uint64_t Murmur3_64(std::string_view key, uint64_t seed) {
  return Murmur3_64(key.data(), key.size(), seed);
}

}  // namespace shbf

#endif  // SHBF_HASH_MURMUR3_H_
