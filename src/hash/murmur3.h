// MurmurHash3 x64-128 (Austin Appleby, public domain algorithm),
// reimplemented from the published finalization constants. Used as the
// default high-quality 64-bit hash for the filters.

#ifndef SHBF_HASH_MURMUR3_H_
#define SHBF_HASH_MURMUR3_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>

namespace shbf {

/// Full 128-bit result as (low, high).
std::pair<uint64_t, uint64_t> Murmur3_128(const void* data, size_t len,
                                          uint64_t seed);

/// Low 64 bits of the 128-bit result.
uint64_t Murmur3_64(const void* data, size_t len, uint64_t seed);

inline uint64_t Murmur3_64(std::string_view key, uint64_t seed) {
  return Murmur3_64(key.data(), key.size(), seed);
}

}  // namespace shbf

#endif  // SHBF_HASH_MURMUR3_H_
