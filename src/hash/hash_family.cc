#include "hash/hash_family.h"

#include "core/rng.h"
#include "hash/bob_hash.h"
#include "hash/fnv.h"
#include "hash/murmur3.h"

namespace shbf {

const char* HashAlgorithmName(HashAlgorithm alg) {
  switch (alg) {
    case HashAlgorithm::kMurmur3:
      return "murmur3";
    case HashAlgorithm::kBobLookup3:
      return "lookup3";
    case HashAlgorithm::kBobLookup2:
      return "lookup2";
    case HashAlgorithm::kFnv1a:
      return "fnv1a";
  }
  return "unknown";
}

uint32_t HashAlgorithmBits(HashAlgorithm alg) {
  return alg == HashAlgorithm::kBobLookup2 ? 32 : 64;
}

HashFamily::HashFamily(HashAlgorithm alg, uint32_t num_functions,
                       uint64_t master_seed)
    : alg_(alg), master_seed_(master_seed) {
  SHBF_CHECK(num_functions > 0) << "a hash family needs at least one function";
  seeds_.reserve(num_functions);
  uint64_t sm = master_seed;
  for (uint32_t i = 0; i < num_functions; ++i) seeds_.push_back(SplitMix64(sm));
}

std::pair<uint64_t, uint64_t> HashFamily::HashPairFallback(
    uint32_t i, const void* data, size_t len) const {
  return {Hash(i, data, len), Hash(i + 1, data, len)};
}

uint64_t HashFamily::Hash(uint32_t i, const void* data, size_t len) const {
  SHBF_DCHECK(i < seeds_.size());
  uint64_t seed = seeds_[i];
  switch (alg_) {
    case HashAlgorithm::kMurmur3:
      return Murmur3_64(data, len, seed);
    case HashAlgorithm::kBobLookup3:
      return BobLookup3(data, len, seed);
    case HashAlgorithm::kBobLookup2:
      return BobLookup2(data, len, static_cast<uint32_t>(seed));
    case HashAlgorithm::kFnv1a:
      return Fnv1a64(data, len, seed);
  }
  return 0;
}

}  // namespace shbf
