#include "hash/bob_hash.h"

#include <cstring>

namespace shbf {

namespace {

// --- lookup2 (Bob Jenkins, 1996) --------------------------------------------

inline void Mix2(uint32_t& a, uint32_t& b, uint32_t& c) {
  a -= b; a -= c; a ^= c >> 13;
  b -= c; b -= a; b ^= a << 8;
  c -= a; c -= b; c ^= b >> 13;
  a -= b; a -= c; a ^= c >> 12;
  b -= c; b -= a; b ^= a << 16;
  c -= a; c -= b; c ^= b >> 5;
  a -= b; a -= c; a ^= c >> 3;
  b -= c; b -= a; b ^= a << 10;
  c -= a; c -= b; c ^= b >> 15;
}

// --- lookup3 (Bob Jenkins, 2006) ---------------------------------------------

inline uint32_t Rot(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

inline void Mix3(uint32_t& a, uint32_t& b, uint32_t& c) {
  a -= c; a ^= Rot(c, 4);  c += b;
  b -= a; b ^= Rot(a, 6);  a += c;
  c -= b; c ^= Rot(b, 8);  b += a;
  a -= c; a ^= Rot(c, 16); c += b;
  b -= a; b ^= Rot(a, 19); a += c;
  c -= b; c ^= Rot(b, 4);  b += a;
}

inline void Final3(uint32_t& a, uint32_t& b, uint32_t& c) {
  c ^= b; c -= Rot(b, 14);
  a ^= c; a -= Rot(c, 11);
  b ^= a; b -= Rot(a, 25);
  c ^= b; c -= Rot(b, 16);
  a ^= c; a -= Rot(c, 4);
  b ^= a; b -= Rot(a, 14);
  c ^= b; c -= Rot(b, 24);
}

// Reads up to 4 bytes little-endian without over-reading.
inline uint32_t Load32Partial(const uint8_t* p, size_t n) {
  uint32_t v = 0;
  for (size_t i = 0; i < n; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

uint32_t BobLookup2(const void* data, size_t len, uint32_t seed) {
  const uint8_t* k = static_cast<const uint8_t*>(data);
  uint32_t a = 0x9e3779b9u;
  uint32_t b = 0x9e3779b9u;
  uint32_t c = seed;
  size_t remaining = len;

  while (remaining >= 12) {
    a += Load32Partial(k, 4);
    b += Load32Partial(k + 4, 4);
    c += Load32Partial(k + 8, 4);
    Mix2(a, b, c);
    k += 12;
    remaining -= 12;
  }

  c += static_cast<uint32_t>(len);
  // Tail: the original switch adds byte i of the tail into the matching lane,
  // with lane c skipping its lowest byte (reserved for the length).
  if (remaining > 0) {
    a += Load32Partial(k, remaining < 4 ? remaining : 4);
  }
  if (remaining > 4) {
    b += Load32Partial(k + 4, remaining - 4 < 4 ? remaining - 4 : 4);
  }
  if (remaining > 8) {
    c += Load32Partial(k + 8, remaining - 8) << 8;
  }
  Mix2(a, b, c);
  return c;
}

uint64_t BobLookup3(const void* data, size_t len, uint64_t seed) {
  const uint8_t* k = static_cast<const uint8_t*>(data);
  uint32_t pc = static_cast<uint32_t>(seed);
  uint32_t pb = static_cast<uint32_t>(seed >> 32);

  uint32_t a = 0xdeadbeefu + static_cast<uint32_t>(len) + pc;
  uint32_t b = a;
  uint32_t c = a + pb;
  size_t remaining = len;

  while (remaining > 12) {
    a += Load32Partial(k, 4);
    b += Load32Partial(k + 4, 4);
    c += Load32Partial(k + 8, 4);
    Mix3(a, b, c);
    k += 12;
    remaining -= 12;
  }

  // Final block: 1..12 bytes (or 0 only when len == 0).
  if (remaining > 0) {
    a += Load32Partial(k, remaining < 4 ? remaining : 4);
    if (remaining > 4) {
      b += Load32Partial(k + 4, remaining - 4 < 4 ? remaining - 4 : 4);
    }
    if (remaining > 8) {
      c += Load32Partial(k + 8, remaining - 8);
    }
    Final3(a, b, c);
  }
  return static_cast<uint64_t>(c) | (static_cast<uint64_t>(b) << 32);
}

}  // namespace shbf
