// Bob Jenkins' hash functions, reimplemented from the published algorithms.
//
// The paper sources its hash functions from burtleburtle.net ("Hash website",
// reference [1]) — Jenkins' lookup2 ("evahash"/"hash2") and its successor
// lookup3. Both are implemented here from scratch: lookup2 (1996) produces a
// 32-bit value; lookup3 (2006, hashlittle2 variant) produces two 32-bit
// values which we combine into one 64-bit result in a single pass.

#ifndef SHBF_HASH_BOB_HASH_H_
#define SHBF_HASH_BOB_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace shbf {

/// Jenkins lookup2 (a.k.a. evahash). 32-bit result seeded by `seed`.
uint32_t BobLookup2(const void* data, size_t len, uint32_t seed);

/// Jenkins lookup3 hashlittle2: two independent 32-bit results in one pass,
/// returned as (pc | pb << 32). Seeded by the two halves of `seed`.
uint64_t BobLookup3(const void* data, size_t len, uint64_t seed);

inline uint32_t BobLookup2(std::string_view key, uint32_t seed) {
  return BobLookup2(key.data(), key.size(), seed);
}
inline uint64_t BobLookup3(std::string_view key, uint64_t seed) {
  return BobLookup3(key.data(), key.size(), seed);
}

}  // namespace shbf

#endif  // SHBF_HASH_BOB_HASH_H_
