#include "hash/randomness.h"

#include <cmath>

#include "core/check.h"

namespace shbf {

RandomnessReport TestBitRandomness(const HashFamily& family,
                                   uint32_t func_index,
                                   const std::vector<std::string>& keys,
                                   uint32_t num_bits) {
  SHBF_CHECK(num_bits >= 1 && num_bits <= 64);
  SHBF_CHECK(!keys.empty());

  std::vector<uint64_t> ones(num_bits, 0);
  for (const std::string& key : keys) {
    uint64_t h = family.Hash(func_index, key);
    for (uint32_t b = 0; b < num_bits; ++b) {
      ones[b] += (h >> b) & 1u;
    }
  }

  RandomnessReport report;
  report.num_keys = keys.size();
  report.bits_tested = num_bits;
  report.bit_frequency.resize(num_bits);
  double bias_sum = 0.0;
  for (uint32_t b = 0; b < num_bits; ++b) {
    double freq = static_cast<double>(ones[b]) / keys.size();
    report.bit_frequency[b] = freq;
    double bias = std::abs(freq - 0.5);
    bias_sum += bias;
    report.max_bias = std::max(report.max_bias, bias);
  }
  report.mean_bias = bias_sum / num_bits;
  return report;
}

}  // namespace shbf
