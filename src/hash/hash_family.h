// A seeded family of k independent hash functions with uniformly distributed
// outputs — the h_1(.), ..., h_k(.) every scheme in the paper assumes.
//
// One master seed is expanded into k per-function seeds via SplitMix64, so a
// family is fully determined by (algorithm, k, master_seed) and experiments
// are replayable. The paper drew its functions from Bob Jenkins' collection
// and kept the 18 that passed a per-bit randomness test (§6.1); the same test
// lives in hash/randomness.h and runs in the test suite.

#ifndef SHBF_HASH_HASH_FAMILY_H_
#define SHBF_HASH_HASH_FAMILY_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/check.h"

namespace shbf {

enum class HashAlgorithm {
  kMurmur3 = 0,     // 64-bit, default
  kBobLookup3 = 1,  // 64-bit, the paper's burtleburtle.net successor hash
  kBobLookup2 = 2,  // 32-bit, the paper's "evahash"
  kFnv1a = 3,       // 64-bit, cheap comparator for ablations
};

/// Short stable name for reports ("murmur3", "lookup3", ...).
const char* HashAlgorithmName(HashAlgorithm alg);

/// Output width in bits (32 for lookup2, 64 otherwise).
uint32_t HashAlgorithmBits(HashAlgorithm alg);

class HashFamily {
 public:
  HashFamily(HashAlgorithm alg, uint32_t num_functions, uint64_t master_seed);

  uint32_t num_functions() const {
    return static_cast<uint32_t>(seeds_.size());
  }
  HashAlgorithm algorithm() const { return alg_; }
  uint64_t master_seed() const { return master_seed_; }

  /// Evaluates the i-th function on `len` bytes at `data`.
  uint64_t Hash(uint32_t i, const void* data, size_t len) const;

  uint64_t Hash(uint32_t i, std::string_view key) const {
    return Hash(i, key.data(), key.size());
  }

 private:
  HashAlgorithm alg_;
  uint64_t master_seed_;
  std::vector<uint64_t> seeds_;
};

}  // namespace shbf

#endif  // SHBF_HASH_HASH_FAMILY_H_
