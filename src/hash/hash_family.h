// A seeded family of k independent hash functions with uniformly distributed
// outputs — the h_1(.), ..., h_k(.) every scheme in the paper assumes.
//
// One master seed is expanded into k per-function seeds via SplitMix64, so a
// family is fully determined by (algorithm, k, master_seed) and experiments
// are replayable. The paper drew its functions from Bob Jenkins' collection
// and kept the 18 that passed a per-bit randomness test (§6.1); the same test
// lives in hash/randomness.h and runs in the test suite.

#ifndef SHBF_HASH_HASH_FAMILY_H_
#define SHBF_HASH_HASH_FAMILY_H_

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "core/check.h"
#include "hash/murmur3.h"

namespace shbf {

enum class HashAlgorithm {
  kMurmur3 = 0,     // 64-bit, default
  kBobLookup3 = 1,  // 64-bit, the paper's burtleburtle.net successor hash
  kBobLookup2 = 2,  // 32-bit, the paper's "evahash"
  kFnv1a = 3,       // 64-bit, cheap comparator for ablations
};

/// Short stable name for reports ("murmur3", "lookup3", ...).
const char* HashAlgorithmName(HashAlgorithm alg);

/// Output width in bits (32 for lookup2, 64 otherwise).
uint32_t HashAlgorithmBits(HashAlgorithm alg);

class HashFamily {
 public:
  HashFamily(HashAlgorithm alg, uint32_t num_functions, uint64_t master_seed);

  uint32_t num_functions() const {
    return static_cast<uint32_t>(seeds_.size());
  }
  HashAlgorithm algorithm() const { return alg_; }
  uint64_t master_seed() const { return master_seed_; }

  /// Evaluates the i-th function on `len` bytes at `data`.
  uint64_t Hash(uint32_t i, const void* data, size_t len) const;

  /// Two 64-bit hashes in one pass over the key bytes where the algorithm
  /// natively emits 128 bits (murmur3's two halves — the second of which
  /// Hash() discards); otherwise falls back to {Hash(i), Hash(i+1)}.
  /// NOTE: the murmur3 pair is NOT {Hash(i), Hash(i+1)} — callers define
  /// their bit placement in terms of this function and must use it on both
  /// the insert and the query side. Requires i + 1 < num_functions() for
  /// the fallback algorithms. The murmur3 branch is inline so a split-block
  /// derivation's single hash pass folds into its caller.
  std::pair<uint64_t, uint64_t> HashPair(uint32_t i, const void* data,
                                         size_t len) const {
    SHBF_DCHECK(i < seeds_.size());
    if (alg_ == HashAlgorithm::kMurmur3) {
      return Murmur3_128(data, len, seeds_[i]);
    }
    return HashPairFallback(i, data, len);
  }

  std::pair<uint64_t, uint64_t> HashPair(uint32_t i,
                                         std::string_view key) const {
    return HashPair(i, key.data(), key.size());
  }

  uint64_t Hash(uint32_t i, std::string_view key) const {
    return Hash(i, key.data(), key.size());
  }

 private:
  /// The two-pass pair for algorithms without a native 128-bit output.
  std::pair<uint64_t, uint64_t> HashPairFallback(uint32_t i, const void* data,
                                                 size_t len) const;

  HashAlgorithm alg_;
  uint64_t master_seed_;
  std::vector<uint64_t> seeds_;
};

}  // namespace shbf

#endif  // SHBF_HASH_HASH_FAMILY_H_
