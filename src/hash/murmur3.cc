#include "hash/murmur3.h"

namespace shbf {

uint64_t Murmur3_64(const void* data, size_t len, uint64_t seed) {
  return Murmur3_128(data, len, seed).first;
}

}  // namespace shbf
