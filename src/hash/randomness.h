// Per-bit randomness test, replicating the paper's methodology (§6.1):
// "the probability of seeing 1 at any bit location in the hashed value
// should be 0.5" over a large key corpus.

#ifndef SHBF_HASH_RANDOMNESS_H_
#define SHBF_HASH_RANDOMNESS_H_

#include <string>
#include <vector>

#include "hash/hash_family.h"

namespace shbf {

struct RandomnessReport {
  size_t num_keys = 0;
  uint32_t bits_tested = 0;
  /// Per-bit empirical frequency of a 1.
  std::vector<double> bit_frequency;
  /// max_i |bit_frequency[i] − 0.5|
  double max_bias = 0.0;
  /// mean_i |bit_frequency[i] − 0.5|
  double mean_bias = 0.0;

  /// True iff every bit's frequency is within `tolerance` of 0.5.
  bool Passes(double tolerance) const { return max_bias <= tolerance; }
};

/// Hashes every key with function `func_index` of `family` and measures the
/// per-bit 1-frequency over the low `num_bits` output bits.
RandomnessReport TestBitRandomness(const HashFamily& family,
                                   uint32_t func_index,
                                   const std::vector<std::string>& keys,
                                   uint32_t num_bits);

}  // namespace shbf

#endif  // SHBF_HASH_RANDOMNESS_H_
