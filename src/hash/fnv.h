// FNV-1a 64-bit hash with a SplitMix-style finalizer. Fast for very short
// keys; included to let the hash-strategy ablation contrast a weak-but-cheap
// hash with the paper's Jenkins hashes.

#ifndef SHBF_HASH_FNV_H_
#define SHBF_HASH_FNV_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace shbf {

/// Seeded FNV-1a over `len` bytes, with finalization mixing so the high bits
/// are usable for modulo reduction.
uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed);

inline uint64_t Fnv1a64(std::string_view key, uint64_t seed) {
  return Fnv1a64(key.data(), key.size(), seed);
}

}  // namespace shbf

#endif  // SHBF_HASH_FNV_H_
