// The shbf_server wire protocol: byte-level framing, opcodes and status
// codes shared by the server (server.h), the client library (client.h),
// and the robustness tests — one definition, zero drift between the sides.
//
// Everything here is pure bytes (ByteWriter/ByteReader); the socket I/O
// lives in net.h. The authoritative prose specification — frame layout,
// per-opcode payloads, error semantics, versioning rules — is
// docs/serving.md; this header is its executable twin.
//
// Frame layout (both directions):
//
//   u32 body_length        little-endian; 1 .. kMaxFrameBytes
//   body_length bytes      request:  u8 opcode  + opcode payload
//                          response: u8 status  + payload (message on error)
//
// A connection starts with a HELLO exchange (magic + protocol version);
// every later request names its opcode. Fatal statuses (bad frame, frame
// too large, version mismatch) are answered and then the connection is
// closed; operation-level errors (unknown filter, unsupported capability,
// I/O failure) keep the connection serving.

#ifndef SHBF_SERVER_PROTOCOL_H_
#define SHBF_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/serde.h"

namespace shbf {
namespace wire {

/// First four body bytes of a HELLO request: "SHBQ" little-endian.
inline constexpr uint32_t kMagic = 0x51424853;

/// Protocol version this build speaks. Versioning rule: a server answers
/// HELLO with its own version; a client whose version the server does not
/// support gets kVersionMismatch and a close. Adding opcodes or response
/// fields bumps the version; layout changes to existing frames are not
/// allowed within a version.
///
/// v2: the multiset opcodes (WHICH_SETS / INDEX_ADD / INDEX_DROP /
/// MULTISET_LIST, src/multiset/). Frames of v1 are unchanged, so servers
/// accept [kMinProtocolVersion, kProtocolVersion] and echo the version
/// each connection will speak — a v1 client keeps working against a v2
/// server (rolling upgrades), while unknown versions fail loudly.
///
/// v3: the METRICS opcode (src/obs/, docs/observability.md) — an empty
/// request answered with the server's full metrics snapshot (uptime,
/// build version, dispatch level, counters, gauges, histograms). Purely
/// additive: v1/v2 frames are byte-identical, so v1/v2 HELLOs are still
/// accepted.
inline constexpr uint8_t kProtocolVersion = 3;
inline constexpr uint8_t kMinProtocolVersion = 1;

/// Hard ceiling on one frame's body. A length prefix above this is answered
/// with kTooLarge and the connection is dropped without allocating.
inline constexpr size_t kMaxFrameBytes = size_t{1} << 26;  // 64 MiB

/// Keys per QUERY/ADD/REMOVE frame (batch ceiling; split larger workloads
/// across frames).
inline constexpr size_t kMaxKeysPerFrame = size_t{1} << 20;

/// Served-filter name limit (bytes).
inline constexpr size_t kMaxNameBytes = 256;

/// SNAPSHOT/RELOAD path limit (bytes).
inline constexpr size_t kMaxPathBytes = 4096;

/// Request opcodes (first body byte of a request).
enum class Opcode : uint8_t {
  kHello = 1,     ///< magic u32 + version u8 → version u8 + server string
  kQuery = 2,     ///< name + mode u8 + key list → per-key u8 / u64
  kAdd = 3,       ///< name + key list → u64 added
  kRemove = 4,    ///< name + key list → per-key u8 (gated on kRemove)
  kStats = 5,     ///< name → registry name + elements + memory + caps
  kList = 6,      ///< (empty) → u32 count + per-filter stats records
  kSnapshot = 7,  ///< name + path → u64 bytes written + path used
  kReload = 8,    ///< name + path → u64 elements

  // ---- v2: the multiset index (one SetCatalog + MultiSetIndex per
  // server, independent of the named single-set filters above) ----
  kWhichSets = 9,      ///< key list → per key: u32 count + count × u32 ids
  kIndexAdd = 10,      ///< set name + key list → u64 added (incremental)
  kIndexDrop = 11,     ///< set name → u64 remaining sets
  kMultisetList = 12,  ///< (empty) → index stats + per-set records

  // ---- v3: observability (src/obs/, docs/observability.md) ----
  kMetrics = 13,  ///< (empty) → uptime + version + dispatch + registry
};

/// "HELLO" / "QUERY" / ... — static strings for metric names, the trace
/// ring and CLI output; "?" for bytes that are not an opcode.
const char* OpcodeName(Opcode opcode);

/// QUERY flavors (the paper's membership and multiplicity families).
enum class QueryMode : uint8_t {
  kMembership = 0,  ///< response: per-key u8 0/1
  kCount = 1,       ///< response: per-key u64 (multiplicity filters only)
};

/// Response status (first body byte of a response).
enum class WireStatus : uint8_t {
  kOk = 0,
  kBadFrame = 1,         ///< malformed payload / handshake — fatal
  kUnknownOpcode = 2,    ///< well-framed request, opcode not understood
  kUnknownFilter = 3,    ///< no filter served under that name
  kUnsupported = 4,      ///< capability gate (e.g. REMOVE on a bit array)
  kTooLarge = 5,         ///< frame or key list over the limits — fatal
  kVersionMismatch = 6,  ///< HELLO version unsupported — fatal
  kIoError = 7,          ///< SNAPSHOT/RELOAD file failure
  kInternal = 8,         ///< server-side bug; never expected
};

/// "OK" / "BAD_FRAME" / ... for logs and CLI output.
const char* WireStatusName(WireStatus status);

/// True for the statuses after which the server closes the connection.
bool IsFatal(WireStatus status);

// ---------------------------------------------------------------- bytes ----

/// u32 length + raw bytes (names, paths, messages).
void WriteString(ByteWriter* writer, std::string_view s);

/// Reads a WriteString record, rejecting lengths over `max_bytes` or past
/// the end of the input. Returns false on any framing error.
bool ReadString(ByteReader* reader, size_t max_bytes, std::string* out);

/// Prepends the u32 length prefix: `body` becomes one wire frame.
std::string Frame(std::string body);

// --------------------------------------------------- request builders ----
// Each returns a complete frame (length prefix included), ready to send.

std::string BuildHello();
std::string BuildQuery(std::string_view filter, QueryMode mode,
                       const std::vector<std::string>& keys);
/// ADD / REMOVE / INDEX_ADD share the name + key-list payload shape.
std::string BuildKeysRequest(Opcode opcode, std::string_view filter,
                             const std::vector<std::string>& keys);
/// STATS / INDEX_DROP (and any future single-name request).
std::string BuildNameRequest(Opcode opcode, std::string_view filter);
/// SNAPSHOT / RELOAD: name + path (empty path = server-remembered path).
std::string BuildPathRequest(Opcode opcode, std::string_view filter,
                             std::string_view path);
/// LIST / MULTISET_LIST (and any future empty-payload request).
std::string BuildEmptyRequest(Opcode opcode);
std::string BuildList();
/// WHICH_SETS: a bare key list (the multiset index is server-global).
std::string BuildWhichSets(const std::vector<std::string>& keys);
/// METRICS (v3): empty payload, answered with the metrics snapshot.
std::string BuildMetrics();

// -------------------------------------------------- response builders ----

/// Error frame: status byte + message string.
std::string BuildError(WireStatus status, std::string_view message);

/// OK frame: kOk byte + `payload`.
std::string BuildOk(std::string_view payload);

// --------------------------------------------------- response parsing ----

/// Splits a response body into status / payload; on a non-OK status the
/// payload is parsed as the error message. Returns false if `body` is too
/// short to carry a status byte.
bool ParseResponse(std::string_view body, WireStatus* status,
                   std::string_view* payload, std::string* error_message);

}  // namespace wire
}  // namespace shbf

#endif  // SHBF_SERVER_PROTOCOL_H_
