// Minimal POSIX TCP helpers shared by ShbfServer, ShbfClient and the
// protocol-robustness tests: listen/connect, full-buffer send/recv, and
// one-frame reads with the length-prefix discipline of protocol.h.
//
// Deliberately thin — the blocking calls serve the client library, the
// legacy thread-per-connection path, and the tests; the nonblocking
// helpers at the bottom serve the epoll event loop (event_loop.h), which
// does its own buffered reads and writes.

#ifndef SHBF_SERVER_NET_H_
#define SHBF_SERVER_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "core/status.h"

namespace shbf {
namespace net {

/// Creates a listening TCP socket bound to `bind_address:port` (port 0 =
/// ephemeral). Returns the fd, or -1 with `*status` explaining why.
int ListenTcp(const std::string& bind_address, uint16_t port, Status* status);

/// The locally-bound port of a socket (resolves port 0 after ListenTcp).
uint16_t LocalPort(int fd);

/// Blocking connect. Returns the fd, or -1 with `*status` explaining why.
int ConnectTcp(const std::string& host, uint16_t port, Status* status);

/// Writes all `len` bytes (SIGPIPE-safe). False on any send failure.
bool SendAll(int fd, const void* data, size_t len);

/// Reads exactly `len` bytes. False on EOF or error before `len` arrive.
bool RecvAll(int fd, void* data, size_t len);

/// Outcome of ReadFrame.
enum class FrameRead {
  kOk,         ///< one complete frame body in `*body`
  kClosed,     ///< clean EOF before any prefix byte (peer hung up idle)
  kTruncated,  ///< EOF or error mid-prefix / mid-body
  kTooLarge,   ///< prefix exceeds `max_frame_bytes` (body not read)
  kEmpty,      ///< prefix of 0 (a frame must carry at least an opcode)
};

/// Reads one length-prefixed frame body. On kTooLarge/kEmpty nothing past
/// the prefix is consumed — callers answer and close.
FrameRead ReadFrame(int fd, size_t max_frame_bytes, std::string* body);

/// Sends an already-framed (length-prefixed) message.
inline bool SendFrame(int fd, std::string_view frame) {
  return SendAll(fd, frame.data(), frame.size());
}

/// shutdown(SHUT_RDWR) — unblocks any thread inside recv on `fd`.
void ShutdownFd(int fd);

/// shutdown(SHUT_RD) only: unblocks a thread inside recv while letting an
/// in-flight send on another thread finish — the drain half of Stop().
void ShutdownReadFd(int fd);

/// close(fd), ignoring errors; no-op on fd < 0.
void CloseFd(int fd);

/// O_NONBLOCK on. False (with errno set) on failure.
bool SetNonBlocking(int fd);

/// Outcome of one nonblocking send/recv attempt.
enum class IoResult {
  kOk,        ///< progress was made (`*transferred` bytes)
  kWouldBlock,///< the socket is not ready; try again on the next event
  kEof,       ///< recv only: the peer closed its write side
  kError,     ///< hard failure (errno) — drop the connection
};

/// One nonblocking recv into `data`; never blocks on an O_NONBLOCK fd.
IoResult RecvSome(int fd, void* data, size_t len, size_t* transferred);

/// One nonblocking send of `data`; MSG_NOSIGNAL, never blocks on an
/// O_NONBLOCK fd. Partial sends report kOk with the partial count.
IoResult SendSome(int fd, const void* data, size_t len, size_t* transferred);

}  // namespace net
}  // namespace shbf

#endif  // SHBF_SERVER_NET_H_
