#include "server/event_loop.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "server/net.h"

namespace shbf {
namespace server {

namespace {

/// Cap on bytes read from one connection per loop iteration, so a firehose
/// peer cannot starve its neighbours (level-triggered epoll re-arms it).
constexpr size_t kMaxReadPerEvent = 256 * 1024;

size_t DefaultWorkers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min<size_t>(std::max<size_t>(hw, 1), 8);
}

/// The loop's registry handles, resolved once per process (the registry
/// returns stable pointers; increments after that are lock-free).
struct LoopMetrics {
  obs::Counter* connections_opened;
  obs::Counter* connections_closed;
  obs::Counter* connections_rejected;
  obs::Counter* backpressure_engaged;
  obs::Counter* backpressure_released;
  obs::Counter* drains;
  obs::Gauge* last_drain_us;

  static const LoopMetrics& Get() {
    static const LoopMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      LoopMetrics m;
      m.connections_opened =
          registry.GetCounter("server.connections_opened_total");
      m.connections_closed =
          registry.GetCounter("server.connections_closed_total");
      m.connections_rejected =
          registry.GetCounter("server.connections_rejected_total");
      m.backpressure_engaged =
          registry.GetCounter("server.backpressure_engaged_total");
      m.backpressure_released =
          registry.GetCounter("server.backpressure_released_total");
      m.drains = registry.GetCounter("server.drains_total");
      m.last_drain_us = registry.GetGauge("server.last_drain_us");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

EventLoop::EventLoop(int listen_fd, EventLoopOptions options,
                     FrameHandler handler)
    : options_(std::move(options)),
      handler_(std::move(handler)),
      listen_fd_(listen_fd) {
  if (options_.num_workers == 0) options_.num_workers = DefaultWorkers();
  if (options_.max_batch_frames == 0) options_.max_batch_frames = 1;
  if (options_.max_pending_frames == 0) options_.max_pending_frames = 1;
}

EventLoop::~EventLoop() { Stop(); }

Status EventLoop::Start() {
  if (running_.load()) return Status::FailedPrecondition("already running");
  if (!net::SetNonBlocking(listen_fd_)) {
    return Status::Internal("listen fd: cannot set O_NONBLOCK");
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Status::Internal("epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    net::CloseFd(epoll_fd_);
    epoll_fd_ = -1;
    return Status::Internal("eventfd failed");
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &event);
  event.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event);

  running_.store(true, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  workers_stop_ = false;
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(&EventLoop::WorkerThread, this);
  }
  loop_thread_ = std::thread(&EventLoop::LoopThread, this);
  return Status::Ok();
}

void EventLoop::Stop() {
  stopping_.store(true, std::memory_order_release);
  if (running_.exchange(false)) WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    workers_stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  net::CloseFd(listen_fd_);
  listen_fd_ = -1;
  net::CloseFd(epoll_fd_);
  epoll_fd_ = -1;
  net::CloseFd(wake_fd_);
  wake_fd_ = -1;
}

void EventLoop::WakeLoop() {
  if (wake_fd_ < 0) return;
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
}

bool EventLoop::ReadsPaused(const Connection& conn) const {
  return conn.pending.size() >= options_.max_pending_frames ||
         conn.output_bytes() >= options_.max_output_bytes;
}

void EventLoop::UpdateInterest(const std::shared_ptr<Connection>& conn) {
  if (conn->dead) return;
  const bool paused = ReadsPaused(*conn);
  if (paused != conn->reads_paused) {
    conn->reads_paused = paused;
    (paused ? LoopMetrics::Get().backpressure_engaged
            : LoopMetrics::Get().backpressure_released)
        ->Increment();
  }
  uint32_t want = 0;
  if (!conn->no_more_reads && !conn->close_after_flush && !paused) {
    want |= EPOLLIN;
  }
  if (conn->output_bytes() > 0) want |= EPOLLOUT;
  if (want == conn->epoll_mask) return;
  epoll_event event{};
  event.events = want;
  event.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &event);
  conn->epoll_mask = want;
}

void EventLoop::Kill(const std::shared_ptr<Connection>& conn) {
  if (conn->dead) return;
  conn->dead = true;
  const int fd = conn->fd;
  conn->fd = -1;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  net::CloseFd(fd);
  connections_.erase(fd);
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  LoopMetrics::Get().connections_closed->Increment();
}

void EventLoop::HandleAccept() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EAGAIN: burst drained. EMFILE/ENFILE and friends: nothing to do
      // but wait for slots; level-triggered epoll retries us.
      break;
    }
    if (options_.max_connections != 0 &&
        connections_.size() >= options_.max_connections) {
      net::CloseFd(fd);
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      LoopMetrics::Get().connections_rejected->Increment();
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(fd, next_connection_id_++,
                                             options_.max_frame_bytes);
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event);
    conn->epoll_mask = EPOLLIN;
    connections_.emplace(fd, std::move(conn));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (options_.connections_counter != nullptr) {
      options_.connections_counter->fetch_add(1, std::memory_order_relaxed);
    }
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    LoopMetrics::Get().connections_opened->Increment();
  }
}

void EventLoop::HandleReadable(const std::shared_ptr<Connection>& conn) {
  if (conn->dead || conn->no_more_reads) return;
  char buffer[64 * 1024];
  size_t read_this_event = 0;
  while (read_this_event < kMaxReadPerEvent) {
    size_t got = 0;
    const net::IoResult result =
        net::RecvSome(conn->fd, buffer, sizeof(buffer), &got);
    if (result == net::IoResult::kError) {
      Kill(conn);
      return;
    }
    if (result == net::IoResult::kEof) {
      // Half-close: keep answering what already arrived; a partial frame
      // in the splitter is a truncation with nobody to answer.
      conn->no_more_reads = true;
      break;
    }
    if (result == net::IoResult::kWouldBlock) break;
    read_this_event += got;
    conn->splitter.Feed(buffer, got);
    std::string_view frame;
    bool violation = false;
    while (true) {
      const FrameSplitter::Event event = conn->splitter.Next(&frame);
      if (event == FrameSplitter::Event::kNeedMore) break;
      PendingFrame pending;
      if (event == FrameSplitter::Event::kFrame) {
        pending.body.assign(frame.data(), frame.size());
        if (obs::Enabled()) {
          pending.enqueued = std::chrono::steady_clock::now();
        }
      } else {
        pending.kind = event == FrameSplitter::Event::kEmpty
                           ? PendingFrame::Kind::kEmpty
                           : PendingFrame::Kind::kTooLarge;
        framing_errors_.fetch_add(1, std::memory_order_relaxed);
        if (options_.framing_errors_counter != nullptr) {
          options_.framing_errors_counter->fetch_add(
              1, std::memory_order_relaxed);
        }
        violation = true;
      }
      conn->pending.push_back(std::move(pending));
      if (violation) break;
    }
    if (violation) {
      // The bytes after a violation are unframeable noise — stop reading;
      // the violation item flows through the queue so the error response
      // keeps pipeline order.
      conn->no_more_reads = true;
      break;
    }
    if (ReadsPaused(*conn)) break;
  }
  MaybeDispatch(conn);
  UpdateInterest(conn);
  // EOF with nothing buffered anywhere: a clean hang-up, close now.
  if (conn->no_more_reads && conn->pending.empty() && !conn->in_flight &&
      conn->output_bytes() == 0) {
    Kill(conn);
  }
}

void EventLoop::MaybeDispatch(const std::shared_ptr<Connection>& conn) {
  if (conn->dead || conn->in_flight || conn->pending.empty()) return;
  Work work;
  work.conn = conn;
  const size_t take =
      std::min(options_.max_batch_frames, conn->pending.size());
  work.frames.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    work.frames.push_back(std::move(conn->pending.front()));
    conn->pending.pop_front();
  }
  conn->in_flight = true;
  ++batches_in_flight_;
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    work_queue_.push_back(std::move(work));
  }
  work_cv_.notify_one();
}

bool EventLoop::Flush(const std::shared_ptr<Connection>& conn) {
  while (!conn->dead && conn->output_bytes() > 0) {
    size_t sent = 0;
    const net::IoResult result =
        net::SendSome(conn->fd, conn->outbuf.data() + conn->out_cursor,
                      conn->output_bytes(), &sent);
    if (result == net::IoResult::kError) {
      Kill(conn);
      return false;
    }
    if (result == net::IoResult::kWouldBlock || sent == 0) break;
    conn->out_cursor += sent;
  }
  return !conn->dead;
}

void EventLoop::HandleWritable(const std::shared_ptr<Connection>& conn) {
  if (conn->dead) return;
  if (!Flush(conn)) return;
  UpdateInterest(conn);
  if (conn->output_bytes() == 0 && !conn->in_flight) {
    if (conn->close_after_flush ||
        (conn->no_more_reads && conn->pending.empty())) {
      Kill(conn);
    }
  }
}

void EventLoop::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    const std::shared_ptr<Connection>& conn = completion.conn;
    conn->in_flight = false;
    --batches_in_flight_;
    if (conn->dead) continue;
    conn->AppendOutput(completion.output);
    if (completion.close_connection) {
      // Fatal response: answer everything up to it, then close. Frames
      // the peer pipelined behind the poison are abandoned, exactly like
      // the thread-per-connection server leaving them unread.
      conn->close_after_flush = true;
      conn->no_more_reads = true;
      conn->pending.clear();
    }
    if (!Flush(conn)) continue;
    MaybeDispatch(conn);
    UpdateInterest(conn);
    if (conn->output_bytes() == 0 && !conn->in_flight) {
      if (conn->close_after_flush ||
          (conn->no_more_reads && conn->pending.empty())) {
        Kill(conn);
      }
    }
  }
}

void EventLoop::LoopThread() {
  std::vector<epoll_event> events(512);
  while (!stopping_.load(std::memory_order_acquire)) {
    const int ready = ::epoll_wait(epoll_fd_, events.data(),
                                   static_cast<int>(events.size()), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < ready; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t mask = events[i].events;
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        [[maybe_unused]] ssize_t ignored =
            ::read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      if (fd == listen_fd_) {
        HandleAccept();
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      std::shared_ptr<Connection> conn = it->second;
      if (mask & EPOLLERR) {
        Kill(conn);
        continue;
      }
      if (mask & EPOLLIN) HandleReadable(conn);
      if (conn->dead) continue;
      if (mask & EPOLLOUT) HandleWritable(conn);
      if (conn->dead) continue;
      if ((mask & EPOLLHUP) != 0 && (mask & EPOLLIN) == 0) Kill(conn);
    }
    DrainCompletions();
  }
  DrainAndClose();
}

void EventLoop::DrainAndClose() {
  const auto drain_start = std::chrono::steady_clock::now();
  // 1. No new connections, no new requests: stop accepting and reading.
  //    Parsed-but-undispatched frames are abandoned (their requests never
  //    started), mirroring the legacy server abandoning unread bytes.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  net::CloseFd(listen_fd_);
  listen_fd_ = -1;
  for (auto& [fd, conn] : connections_) {
    conn->no_more_reads = true;
    conn->pending.clear();
    UpdateInterest(conn);
  }
  // 2. Deterministic drain: every batch already at the workers completes,
  //    and every queued response byte is flushed to peers that keep
  //    reading — only peers still stalled after drain_timeout_ms get cut.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.drain_timeout_ms);
  std::vector<epoll_event> events(512);
  while (true) {
    bool output_pending = false;
    for (const auto& [fd, conn] : connections_) {
      if (conn->output_bytes() > 0) {
        output_pending = true;
        break;
      }
    }
    const bool expired = std::chrono::steady_clock::now() >= deadline;
    // In-flight batches must complete regardless of the deadline (workers
    // cannot be aborted mid-handler); pending output stops mattering once
    // the deadline passes.
    if (batches_in_flight_ == 0 && (!output_pending || expired)) break;
    const int ready = ::epoll_wait(epoll_fd_, events.data(),
                                   static_cast<int>(events.size()), 50);
    for (int i = 0; i < ready; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        [[maybe_unused]] ssize_t ignored =
            ::read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      std::shared_ptr<Connection> conn = it->second;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        Kill(conn);
        continue;
      }
      if (events[i].events & EPOLLOUT) HandleWritable(conn);
    }
    DrainCompletions();
  }
  // 3. Close whatever is left (drained idle connections and stalled
  //    peers alike).
  std::vector<std::shared_ptr<Connection>> remaining;
  remaining.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) remaining.push_back(conn);
  for (const auto& conn : remaining) Kill(conn);
  LoopMetrics::Get().drains->Increment();
  LoopMetrics::Get().last_drain_us->Set(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - drain_start)
          .count());
}

void EventLoop::WorkerThread() {
  while (true) {
    Work work;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock,
                    [this] { return workers_stop_ || !work_queue_.empty(); });
      if (work_queue_.empty()) return;  // workers_stop_ and drained
      work = std::move(work_queue_.front());
      work_queue_.pop_front();
    }
    Completion completion;
    completion.conn = work.conn;
    for (PendingFrame& frame : work.frames) {
      if (frame.kind == PendingFrame::Kind::kEmpty) {
        completion.output += options_.empty_frame_response;
        completion.close_connection = true;
        break;
      }
      if (frame.kind == PendingFrame::Kind::kTooLarge) {
        completion.output += options_.too_large_response;
        completion.close_connection = true;
        break;
      }
      FrameContext context;
      context.connection_id = work.conn->id;
      if (frame.enqueued != std::chrono::steady_clock::time_point{}) {
        context.queue_wait_us = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - frame.enqueued)
                .count());
      }
      FrameResult result =
          handler_(frame.body, &work.conn->hello_done, context);
      completion.output += result.frame;
      if (result.close_connection) {
        completion.close_connection = true;
        break;
      }
    }
    {
      std::lock_guard<std::mutex> lock(completion_mu_);
      completions_.push_back(std::move(completion));
    }
    WakeLoop();
  }
}

}  // namespace server
}  // namespace shbf
