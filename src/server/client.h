// ShbfClient — the client side of the shbf_server wire protocol
// (protocol.h, docs/serving.md). One blocking TCP connection, one
// in-flight request at a time; batches of keys per frame. Shared by
// `shbf_cli remote` and bench/serve_throughput.cc — and small enough to
// embed anywhere a remote filter probe is wanted.
//
// Thread safety: none — one ShbfClient per thread (the server happily
// accepts as many connections as you open).

#ifndef SHBF_SERVER_CLIENT_H_
#define SHBF_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"
#include "obs/metrics.h"
#include "server/protocol.h"

namespace shbf {

class ShbfClient {
 public:
  ShbfClient() = default;
  ~ShbfClient();

  ShbfClient(const ShbfClient&) = delete;
  ShbfClient& operator=(const ShbfClient&) = delete;

  /// Connects and performs the HELLO handshake. On success
  /// server_version() carries the server's build string.
  Status Connect(const std::string& host, uint16_t port);

  void Close();
  bool connected() const { return fd_ >= 0; }

  /// "shbf_server 0.6.0" — from the HELLO response.
  const std::string& server_version() const { return server_version_; }

  /// Batched membership: `results` is resized to keys.size(); entry i is
  /// 1 iff the served filter (possibly) contains keys[i].
  Status Query(std::string_view filter, const std::vector<std::string>& keys,
               std::vector<uint8_t>* results);

  /// Batched multiplicity (COUNT mode). Fails with kFailedPrecondition if
  /// the served filter is not a multiplicity filter.
  Status QueryCount(std::string_view filter,
                    const std::vector<std::string>& keys,
                    std::vector<uint64_t>* counts);

  /// Adds every key; `*added` (optional) receives the server's count.
  Status Add(std::string_view filter, const std::vector<std::string>& keys,
             uint64_t* added = nullptr);

  /// Removes keys; `removed` (optional) gets a per-key 1 (removed) / 0
  /// (reported not-found). Fails with kFailedPrecondition when the served
  /// filter does not advertise kRemove.
  Status Remove(std::string_view filter, const std::vector<std::string>& keys,
                std::vector<uint8_t>* removed = nullptr);

  /// One served filter's stats (the STATS / LIST wire record).
  struct FilterInfo {
    std::string serve_name;     ///< name on the server (empty from Stats)
    std::string registry_name;  ///< e.g. "sharded/shbf_m"
    uint64_t elements = 0;
    uint64_t memory_bytes = 0;
    uint32_t capabilities = 0;
  };

  Status Stats(std::string_view filter, FilterInfo* info);
  Status List(std::vector<FilterInfo>* filters);

  /// Batched multiset query: `results` is resized to keys.size(); entry i
  /// receives the ascending catalog set ids that (possibly) contain
  /// keys[i]. Fails with kFailedPrecondition when the server serves no
  /// catalog (WHICH_SETS opcode, protocol v2).
  Status WhichSets(const std::vector<std::string>& keys,
                   std::vector<std::vector<uint32_t>>* results);

  /// Adds keys to catalog set `set`; the server maintains the index
  /// incrementally (leaf + every summary on its root path).
  Status IndexAdd(std::string_view set, const std::vector<std::string>& keys,
                  uint64_t* added = nullptr);

  /// Drops catalog set `set` from the index and the catalog; `*remaining`
  /// (optional) receives the surviving set count.
  Status IndexDrop(std::string_view set, uint64_t* remaining = nullptr);

  /// The MULTISET_LIST record: index shape plus one row per catalog set.
  struct MultisetInfo {
    struct Set {
      uint32_t id = 0;
      std::string name;
      std::string registry_name;
      uint64_t elements = 0;
    };
    std::vector<Set> sets;
    uint32_t trees = 0;        ///< summary-tree roots probed per query
    uint32_t scan_leaves = 0;  ///< sets probed brute-force
    uint32_t levels = 0;       ///< deepest tree
    uint64_t summary_memory_bytes = 0;
  };

  Status MultisetList(MultisetInfo* info);

  /// The METRICS response (protocol v3): uptime, build version, SIMD
  /// dispatch level, and the full registry snapshot — including the four
  /// core counters as "server.*_total" entries, bit-identical to the
  /// server's in-process counters() at response time. Fails with
  /// kInvalidArgument against a pre-v3 server (UNKNOWN_OPCODE).
  struct ServerMetrics {
    uint64_t uptime_seconds = 0;
    std::string version;
    std::string dispatch;
    obs::MetricsSnapshot snapshot;  ///< counters / gauges / histograms
  };

  Status Metrics(ServerMetrics* metrics);

  /// Serializes the served filter to `path` on the SERVER's filesystem
  /// (empty path = the server's remembered path for this filter).
  Status Snapshot(std::string_view filter, std::string_view path,
                  uint64_t* bytes_written = nullptr,
                  std::string* path_used = nullptr);

  /// Replaces the served filter from a blob on the server's filesystem.
  Status Reload(std::string_view filter, std::string_view path,
                uint64_t* elements = nullptr);

 private:
  /// Sends `frame`, reads one response, maps wire errors to Status, and
  /// leaves the OK payload in `*payload` (backed by `*response_body`).
  Status RoundTrip(const std::string& frame, std::string* response_body,
                   std::string_view* payload);

  Status ReadStatsPayload(ByteReader* reader, bool with_serve_name,
                          FilterInfo* info);

  int fd_ = -1;
  std::string server_version_;
};

}  // namespace shbf

#endif  // SHBF_SERVER_CLIENT_H_
