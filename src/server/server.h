// ShbfServer — the networked query-serving subsystem: any filter the
// registry can build or deserialize becomes a remotely addressable backend
// under a string name (cf. Bloofi's "many filters, one service" framing).
//
// Model (default): one epoll event-loop thread multiplexing every
// connection plus a fixed worker pool (server::EventLoop) — thread count
// is O(workers), not O(connections), so C10K+ concurrent connections and
// pipelined request frames are first-class. Each request frame carries a
// *batch* of keys, which the handler resolves in one BatchQueryEngine call
// under the filter's reader lock — so concurrent connections querying the
// same filter stay on the shared-lock path, and a sharded/dynamic wrapper
// underneath additionally spreads them across its per-shard locks.
// Mutating opcodes (ADD / REMOVE / RELOAD) take the writer lock and finish
// with PrepareForConstReads(), so lazily-rebuilt bases (shbf_x, shbf_a)
// never mutate inside a shared-lock read.
//
// Fallback (options.legacy_threads): the original acceptor thread plus one
// blocking thread per connection — the reference implementation the event
// loop is differential-tested against; both speak byte-identical wire.
//
// Lifecycle: RegisterFilter/LoadFilter before Start(); the served-name map
// is immutable while serving (RELOAD swaps a filter's *contents* under its
// writer lock, never the map shape). Stop() is idempotent, drains
// in-flight responses (bounded by drain_timeout_ms) and joins every
// thread — safe from signal-driven shutdown paths and from tests.
//
// The wire protocol is protocol.h / docs/serving.md; the matching client
// is client.h.

#ifndef SHBF_SERVER_SERVER_H_
#define SHBF_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "api/set_catalog.h"
#include "api/set_query_filter.h"
#include "core/status.h"
#include "engine/batch_query_engine.h"
#include "multiset/multi_set_index.h"
#include "obs/metrics.h"
#include "obs/trace_ring.h"
#include "server/event_loop.h"
#include "server/protocol.h"

namespace shbf {

struct ServerOptions {
  /// IPv4 address to bind. Loopback by default: exposing a filter fleet
  /// beyond the host is a deliberate operator decision (docs/serving.md).
  std::string bind_address = "127.0.0.1";

  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;

  /// Group size of the engine each QUERY batch is resolved through.
  size_t batch_size = 32;

  /// Per-frame body ceiling (see wire::kMaxFrameBytes).
  size_t max_frame_bytes = wire::kMaxFrameBytes;

  /// Keys-per-frame ceiling (see wire::kMaxKeysPerFrame).
  size_t max_keys_per_frame = wire::kMaxKeysPerFrame;

  /// Serve with the original thread-per-connection model instead of the
  /// epoll event loop. Kept as the differential-testing reference and as
  /// an operational escape hatch; both modes speak identical bytes.
  bool legacy_threads = false;

  /// Event-loop worker threads. 0 = one per hardware thread, clamped to
  /// [1, 8]. Ignored under legacy_threads.
  size_t num_workers = 0;

  /// Concurrent-connection ceiling; past it new sockets are accepted and
  /// immediately closed. 0 = unlimited. Ignored under legacy_threads.
  size_t max_connections = 0;

  /// Stop(): how long to keep flushing in-flight responses before
  /// aborting connections whose peers have stalled (both modes).
  int drain_timeout_ms = 5000;

  /// Frames whose handle time crosses this threshold emit one stderr line
  /// and count into server.slow_requests_total (docs/observability.md).
  /// 0 disables the slow log; the trace ring records regardless.
  int slow_request_ms = 0;
};

class ShbfServer {
 public:
  explicit ShbfServer(ServerOptions options = {});
  ~ShbfServer();

  ShbfServer(const ShbfServer&) = delete;
  ShbfServer& operator=(const ShbfServer&) = delete;

  /// Serves `filter` under `serve_name`. `source_path` (optional) is the
  /// default target of SNAPSHOT/RELOAD frames with an empty path. Must be
  /// called before Start(); fails on a duplicate, empty or oversized name.
  Status RegisterFilter(std::string serve_name,
                        std::unique_ptr<MembershipFilter> filter,
                        std::string source_path = {});

  /// Deserializes a registry-envelope blob from `path` and serves it
  /// under `serve_name` with `path` as its remembered source. An "mmap:"
  /// prefix instead opens the path as a flat image (checksums verified)
  /// and serves queries zero-copy off the mapping — instant restart, the
  /// open cost is O(1) in filter size — with the entry read-only.
  Status LoadFilter(std::string serve_name, const std::string& path);

  /// Serves `catalog` behind a MultiSetIndex: WHICH_SETS answers "which of
  /// these sets contain key k" and INDEX_ADD / INDEX_DROP maintain the
  /// index incrementally. One catalog per server; must be called before
  /// Start(). The catalog is independent of the RegisterFilter namespace.
  Status ServeCatalog(SetCatalog catalog,
                      const MultiSetIndexOptions& options = {});

  /// Deserializes a SetCatalog envelope from `path` and serves it.
  Status LoadCatalog(const std::string& path,
                     const MultiSetIndexOptions& options = {});

  /// Binds, listens, and spawns the acceptor. Fails if no filter is
  /// registered or the address is unusable.
  Status Start();

  /// Stops accepting, unblocks and joins every connection thread, closes
  /// all sockets. Idempotent; called by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (the ephemeral one when options.port was 0).
  uint16_t port() const { return port_; }

  /// Monotonic liveness counters (the STATS of the server itself).
  ///
  /// Both serving modes feed the SAME four atomics: accepts are counted by
  /// the acceptor (legacy) or by the event loop through its
  /// connections_counter hook; framing violations, which never reach
  /// HandleRequest in loop mode, flow through the loop's
  /// framing_errors_counter hook into protocol_errors; frames and keys are
  /// counted in the shared HandleFrame path. A METRICS frame therefore
  /// reports values bit-identical to counters() in either mode.
  struct Counters {
    uint64_t connections = 0;      ///< accepted since Start
    uint64_t frames = 0;           ///< request frames answered
    uint64_t keys_queried = 0;     ///< keys across QUERY + WHICH_SETS frames
    uint64_t protocol_errors = 0;  ///< non-OK responses sent
    uint64_t uptime_seconds = 0;   ///< seconds since Start (0 before)
    std::string version;           ///< core/version.h build version
  };
  Counters counters() const;

  /// The full observability snapshot a METRICS frame answers with: the
  /// process-global obs registry plus the four core counters above (as
  /// "server.connections_total" / "server.frames_total" /
  /// "server.keys_queried_total" / "server.protocol_errors_total"), slow
  /// log totals, uptime, build version and SIMD dispatch level. Also the
  /// source of --metrics-dump files.
  obs::MetricsSnapshot CollectMetrics() const;

  /// The per-frame trace ring (opcode, key count, queue wait, handle
  /// time, bytes for the last ~1024 frames). Configure the slow threshold
  /// via ServerOptions::slow_request_ms.
  obs::RequestTraceRing& trace_ring() { return trace_ring_; }
  const obs::RequestTraceRing& trace_ring() const { return trace_ring_; }

  /// Currently-open connections — the fuzz suite's slot-leak probe. Always
  /// 0 after Stop().
  uint64_t active_connections() const;

 private:
  /// One served filter: the object, its RW lock, and serving metadata.
  struct Served {
    std::unique_ptr<MembershipFilter> filter;
    /// Cached MultiplicityFilter view (null → COUNT mode unsupported).
    MultiplicityFilter* multiplicity = nullptr;
    /// Default SNAPSHOT/RELOAD target; updated by either opcode. An
    /// "mmap:" prefix marks a flat-image target (docs/persistence.md), so
    /// an empty-path RELOAD round-trips in the same mode it snapshot in.
    std::string source_path;
    /// True when `filter` serves straight off a read-only mapped image
    /// (storage::MappedFilter): ADD / REMOVE answer kUnsupported instead
    /// of tripping the mapped filter's mutation CHECK.
    bool read_only = false;
    /// Generation stamped into the last mapped snapshot (or carried by the
    /// mapped image this entry was loaded from); the next mmap SNAPSHOT
    /// writes generation + 1 so crash tooling can tell old from new.
    uint64_t snapshot_generation = 0;
    /// Readers shared, mutators exclusive (see file comment).
    mutable std::shared_mutex mu;
  };

  /// (legacy mode) A connection thread and its socket, so Stop() can
  /// unblock + join.
  struct LegacyConnection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  /// One response frame plus the close-after-send decision. Handlers run
  /// on concurrent connection threads, so everything per-request travels
  /// by value — the server object holds no per-request state.
  struct Response {
    std::string frame;
    bool close_connection = false;
    /// Keys this frame touched (QUERY/ADD/REMOVE/WHICH_SETS/INDEX_ADD);
    /// feeds the request-trace ring.
    uint32_t keys_touched = 0;
  };

  void AcceptLoop();
  void ServeConnection(LegacyConnection* connection);

  /// The shared per-frame entry point of BOTH serving modes: counts the
  /// frame, dispatches via HandleRequest, and (when obs::Enabled) records
  /// per-opcode latency, the queue-wait histogram and a trace-ring entry.
  /// The frame counter is bumped BEFORE handling so a METRICS response
  /// includes its own frame — the bit-for-bit parity contract with
  /// counters().
  Response HandleFrame(std::string_view body, bool* hello_done,
                       const server::EventLoop::FrameContext& context);

  /// Dispatches one request body. `*hello_done` tracks the connection's
  /// handshake state.
  Response HandleRequest(std::string_view body, bool* hello_done);

  Response HandleHello(ByteReader* reader, bool* hello_done);
  Response HandleQuery(ByteReader* reader);
  Response HandleAdd(ByteReader* reader);
  Response HandleRemove(ByteReader* reader);
  Response HandleStats(ByteReader* reader);
  Response HandleList();
  Response HandleSnapshot(ByteReader* reader);
  Response HandleReload(ByteReader* reader);
  Response HandleWhichSets(ByteReader* reader);
  Response HandleIndexAdd(ByteReader* reader);
  Response HandleIndexDrop(ByteReader* reader);
  Response HandleMultisetList();
  Response HandleMetrics(ByteReader* reader);

  /// Reads the leading filter-name string and resolves it; on failure
  /// returns nullptr with `*error` set to the ready-to-send response.
  Served* ResolveFilter(ByteReader* reader, Response* error);

  /// Error response; fatal statuses (wire::IsFatal) also close.
  Response Error(wire::WireStatus status, std::string_view message);

  /// Joins and drops finished connection threads (called from the
  /// acceptor between accepts, and from Stop for the stragglers).
  void ReapConnections(bool all);

  ServerOptions options_;
  BatchQueryEngine engine_;
  /// Served-name → filter. Shape is frozen by Start(); per-entry state is
  /// guarded by the entry's own lock.
  std::map<std::string, std::unique_ptr<Served>, std::less<>> served_;

  /// The multiset subsystem (null until ServeCatalog/LoadCatalog): catalog
  /// and index move together under one lock — WHICH_SETS / MULTISET_LIST
  /// shared, INDEX_ADD / INDEX_DROP exclusive and ending with
  /// PrepareForConstReads() (same discipline as the per-filter locks).
  SetCatalog catalog_;
  std::unique_ptr<MultiSetIndex> multiset_;
  mutable std::shared_mutex multiset_mu_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};

  /// The default serving core (null under legacy_threads or before Start).
  /// Kept alive after Stop() so its counters remain readable.
  std::unique_ptr<server::EventLoop> loop_;

  // ---- legacy thread-per-connection state ----
  std::thread acceptor_;
  mutable std::mutex connections_mu_;
  std::vector<std::unique_ptr<LegacyConnection>> connections_;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> frames_served_{0};
  std::atomic<uint64_t> keys_queried_{0};
  std::atomic<uint64_t> protocol_errors_{0};

  // ---- observability (src/obs/, docs/observability.md) ----
  /// Set by Start(); epoch before it (uptime reads as 0).
  std::chrono::steady_clock::time_point start_time_{};
  obs::RequestTraceRing trace_ring_;
  /// Per-opcode handles into the global registry, resolved once in the
  /// constructor; index is the raw opcode byte.
  static constexpr size_t kOpcodeSlots = 16;
  struct OpcodeMetrics {
    obs::Counter* frames = nullptr;
    obs::Histogram* handle_us = nullptr;
  };
  OpcodeMetrics op_metrics_[kOpcodeSlots] = {};
  obs::Histogram* queue_wait_us_ = nullptr;
};

}  // namespace shbf

#endif  // SHBF_SERVER_SERVER_H_
