// Per-connection state for the epoll event loop (event_loop.h): an
// incremental length-prefix frame splitter that tolerates arbitrarily
// fragmented input (byte-at-a-time dribbles, several pipelined frames in
// one read), a queue of parsed-but-unserved request bodies, and a buffered
// write side that survives short writes.
//
// Threading contract: every field is owned by the event-loop thread,
// EXCEPT `hello_done`, which belongs to whichever worker is processing the
// connection's one in-flight frame batch — the loop never dispatches a
// second batch before the first completes, and the work/completion queue
// mutexes order the hand-offs, so no two threads ever touch it
// concurrently.

#ifndef SHBF_SERVER_CONNECTION_H_
#define SHBF_SERVER_CONNECTION_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

namespace shbf {
namespace server {

/// Incremental length-prefixed frame parser. Feed() raw socket bytes in
/// any fragmentation; Next() pops complete frame bodies one at a time.
/// The returned views point into the internal buffer and are invalidated
/// by the next Feed() — copy before buffering.
class FrameSplitter {
 public:
  explicit FrameSplitter(size_t max_frame_bytes)
      : max_frame_bytes_(max_frame_bytes) {}

  enum class Event {
    kNeedMore,  ///< no complete frame buffered yet
    kFrame,     ///< `*frame` holds one complete body
    kEmpty,     ///< a zero-length prefix arrived (protocol violation)
    kTooLarge,  ///< a prefix above max_frame_bytes arrived (violation)
  };

  void Feed(const char* data, size_t len);
  Event Next(std::string_view* frame);

  /// True when a partial prefix or body is buffered — an EOF now is a
  /// mid-frame truncation, not a clean close.
  bool mid_frame() const { return cursor_ < buffer_.size(); }

  /// Bytes currently buffered (flow-control accounting).
  size_t buffered_bytes() const { return buffer_.size() - cursor_; }

 private:
  size_t max_frame_bytes_;
  std::string buffer_;
  size_t cursor_ = 0;  ///< start of the first unconsumed byte
};

/// One parsed item awaiting a worker. Framing violations travel through
/// the same queue as real requests so error responses keep wire order
/// with the pipelined requests that preceded them.
struct PendingFrame {
  enum class Kind : uint8_t {
    kRequest,   ///< `body` is a request body for the frame handler
    kEmpty,     ///< zero-length frame: answer the canned error, close
    kTooLarge,  ///< oversized frame: answer the canned error, close
  };
  Kind kind = Kind::kRequest;
  std::string body;
  /// When the loop parsed the frame; the worker derives the queue-wait
  /// metric from it. Left at epoch when metrics are disabled (a clock
  /// read per frame is exactly what obs::Enabled() gates).
  std::chrono::steady_clock::time_point enqueued{};
};

/// All loop-side state of one accepted socket. Lifetime is managed by
/// shared_ptr: the loop's fd-keyed map holds one reference, and every
/// in-flight work/completion item holds another, so a connection that
/// dies mid-batch stays valid until its last completion is discarded.
struct Connection {
  Connection(int fd_in, uint64_t id_in, size_t max_frame_bytes)
      : fd(fd_in), id(id_in), splitter(max_frame_bytes) {}

  int fd;
  const uint64_t id;

  FrameSplitter splitter;
  std::deque<PendingFrame> pending;  ///< parsed, not yet dispatched

  /// Bytes the kernel has not accepted yet; cursor avoids front-erases.
  std::string outbuf;
  size_t out_cursor = 0;

  bool hello_done = false;      ///< worker-owned (see file comment)
  bool in_flight = false;       ///< one batch is at the workers
  bool reads_paused = false;    ///< backpressure state (edge counting)
  bool no_more_reads = false;   ///< peer EOF'd or a fatal frame was seen
  bool close_after_flush = false;  ///< close once outbuf drains
  bool dead = false;            ///< discard any late completions
  uint32_t epoll_mask = 0;      ///< interest currently registered

  size_t output_bytes() const { return outbuf.size() - out_cursor; }

  /// Appends response bytes, compacting the consumed prefix when it
  /// dominates the buffer.
  void AppendOutput(std::string_view bytes);
};

}  // namespace server
}  // namespace shbf

#endif  // SHBF_SERVER_CONNECTION_H_
