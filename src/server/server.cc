#include "server/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <utility>

#include "api/filter_registry.h"
#include "core/cpu_features.h"
#include "core/file_io.h"
#include "core/version.h"
#include "server/net.h"

namespace shbf {

namespace {

/// Path prefix selecting flat-image (mmap) persistence on SNAPSHOT /
/// RELOAD / --load targets; everything after it is the filesystem path.
constexpr std::string_view kMmapPrefix = "mmap:";

/// True (and strips the prefix into `*path`) when `path` selects mmap mode.
bool StripMmapPrefix(std::string* path) {
  if (path->size() < kMmapPrefix.size() ||
      std::string_view(*path).substr(0, kMmapPrefix.size()) != kMmapPrefix) {
    return false;
  }
  path->erase(0, kMmapPrefix.size());
  return true;
}

/// The per-filter stats record shared by STATS and LIST responses.
void WriteStatsRecord(ByteWriter* writer, const MembershipFilter& filter) {
  wire::WriteString(writer, filter.name());
  writer->PutU64(filter.num_elements());
  writer->PutU64(filter.memory_bytes());
  writer->PutU32(filter.capabilities());
}

/// "WHICH_SETS" → "which_sets" for metric-name suffixes.
std::string LowerOpcodeName(wire::Opcode opcode) {
  std::string name = wire::OpcodeName(opcode);
  for (char& c : name) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return name;
}

}  // namespace

ShbfServer::ShbfServer(ServerOptions options)
    : options_(std::move(options)),
      engine_(BatchOptions{.batch_size = options_.batch_size}) {
  if (options_.slow_request_ms > 0) {
    trace_ring_.set_slow_threshold_us(
        static_cast<uint64_t>(options_.slow_request_ms) * 1000);
  }
  auto& registry = obs::MetricsRegistry::Global();
  queue_wait_us_ = registry.GetHistogram("server.queue_wait_us");
  for (uint8_t byte = 1; byte < kOpcodeSlots; ++byte) {
    const auto opcode = static_cast<wire::Opcode>(byte);
    if (std::string_view(wire::OpcodeName(opcode)) == "?") continue;
    const std::string lower = LowerOpcodeName(opcode);
    op_metrics_[byte].frames =
        registry.GetCounter("server.op." + lower + ".frames_total");
    op_metrics_[byte].handle_us =
        registry.GetHistogram("server.handle_us." + lower);
  }
}

ShbfServer::~ShbfServer() { Stop(); }

Status ShbfServer::RegisterFilter(std::string serve_name,
                                  std::unique_ptr<MembershipFilter> filter,
                                  std::string source_path) {
  if (running()) {
    return Status::FailedPrecondition(
        "RegisterFilter: the served-name map is frozen while serving");
  }
  if (serve_name.empty() || serve_name.size() > wire::kMaxNameBytes) {
    return Status::InvalidArgument("RegisterFilter: bad name length " +
                                   std::to_string(serve_name.size()));
  }
  if (filter == nullptr) {
    return Status::InvalidArgument("RegisterFilter: null filter");
  }
  if (served_.count(serve_name) != 0) {
    return Status::AlreadyExists("RegisterFilter: '" + serve_name +
                                 "' is already served");
  }
  // Finish any deferred build now, so the first QUERY can read under the
  // shared lock (mirrors the discipline every mutating opcode follows).
  filter->PrepareForConstReads();
  auto served = std::make_unique<Served>();
  served->multiplicity = dynamic_cast<MultiplicityFilter*>(filter.get());
  // A mapped image is read-only by construction: gate the mutating opcodes
  // here instead of letting them trip the MappedFilter's CHECK.
  if (const auto* mapped =
          dynamic_cast<const storage::MappedFilter*>(filter.get())) {
    served->read_only = true;
    served->snapshot_generation = mapped->generation();
  }
  served->filter = std::move(filter);
  served->source_path = std::move(source_path);
  served_.emplace(std::move(serve_name), std::move(served));
  return Status::Ok();
}

Status ShbfServer::LoadFilter(std::string serve_name,
                              const std::string& path) {
  std::string target = path;
  if (StripMmapPrefix(&target)) {
    // Flat image: map it and serve zero-copy. Checksums are verified once
    // here — after that the kernel pages bits in on demand.
    std::unique_ptr<MembershipFilter> filter;
    Status s = FilterRegistry::Global().OpenMapped(
        target, &filter, storage::OpenOptions{.verify_payload = true});
    if (!s.ok()) return s;
    // Remember the *prefixed* path so empty-path SNAPSHOT / RELOAD frames
    // stay in mmap mode.
    return RegisterFilter(std::move(serve_name), std::move(filter), path);
  }
  std::string blob;
  Status s = ReadFileToString(path, &blob);
  if (!s.ok()) return s;
  std::unique_ptr<MembershipFilter> filter;
  s = FilterRegistry::Global().Deserialize(blob, &filter);
  if (!s.ok()) return s;
  return RegisterFilter(std::move(serve_name), std::move(filter), path);
}

Status ShbfServer::ServeCatalog(SetCatalog catalog,
                                const MultiSetIndexOptions& options) {
  if (running()) {
    return Status::FailedPrecondition(
        "ServeCatalog: the multiset index is frozen while serving");
  }
  if (multiset_ != nullptr) {
    return Status::AlreadyExists("ServeCatalog: a catalog is already served");
  }
  std::unique_ptr<MultiSetIndex> index;
  SetCatalog own = std::move(catalog);
  Status s = MultiSetIndex::Build(&own, options, &index);
  if (!s.ok()) return s;
  index->PrepareForConstReads();
  catalog_ = std::move(own);
  multiset_ = std::move(index);
  return Status::Ok();
}

Status ShbfServer::LoadCatalog(const std::string& path,
                               const MultiSetIndexOptions& options) {
  std::string blob;
  Status s = ReadFileToString(path, &blob);
  if (!s.ok()) return s;
  SetCatalog catalog;
  s = SetCatalog::Deserialize(blob, FilterRegistry::Global(), &catalog);
  if (!s.ok()) return s;
  return ServeCatalog(std::move(catalog), options);
}

Status ShbfServer::Start() {
  if (running()) return Status::FailedPrecondition("Start: already running");
  if (served_.empty() && multiset_ == nullptr) {
    return Status::FailedPrecondition(
        "Start: no filters registered and no catalog served");
  }
  Status s;
  listen_fd_ = net::ListenTcp(options_.bind_address, options_.port, &s);
  if (listen_fd_ < 0) return s;
  port_ = net::LocalPort(listen_fd_);
  start_time_ = std::chrono::steady_clock::now();
  if (options_.legacy_threads) {
    running_.store(true, std::memory_order_release);
    acceptor_ = std::thread(&ShbfServer::AcceptLoop, this);
    return Status::Ok();
  }
  server::EventLoopOptions loop_options;
  loop_options.max_frame_bytes = options_.max_frame_bytes;
  loop_options.num_workers = options_.num_workers;
  loop_options.max_connections = options_.max_connections;
  loop_options.drain_timeout_ms = options_.drain_timeout_ms;
  // Byte-identical to what the legacy read loop sends on each violation.
  loop_options.empty_frame_response =
      wire::BuildError(wire::WireStatus::kBadFrame, "zero-length frame");
  loop_options.too_large_response = wire::BuildError(
      wire::WireStatus::kTooLarge, "frame exceeds the body limit");
  // Same counter semantics as legacy mode: the loop feeds the server's
  // atomics directly (accepts; framing violations as protocol errors).
  loop_options.connections_counter = &connections_accepted_;
  loop_options.framing_errors_counter = &protocol_errors_;
  loop_ = std::make_unique<server::EventLoop>(
      listen_fd_, std::move(loop_options),
      [this](std::string_view body, bool* hello_done,
             const server::EventLoop::FrameContext& context) {
        Response response = HandleFrame(body, hello_done, context);
        return server::EventLoop::FrameResult{std::move(response.frame),
                                              response.close_connection};
      });
  listen_fd_ = -1;  // the loop owns it now
  s = loop_->Start();
  if (!s.ok()) {
    loop_.reset();
    return s;
  }
  running_.store(true, std::memory_order_release);
  return Status::Ok();
}

void ShbfServer::Stop() {
  running_.store(false, std::memory_order_release);
  if (loop_ != nullptr) {
    // Drains per the EventLoop contract; kept alive for its counters.
    loop_->Stop();
    return;
  }
  // Unblock the acceptor first so no new connection slips in mid-teardown.
  net::ShutdownFd(listen_fd_);
  if (acceptor_.joinable()) acceptor_.join();
  net::CloseFd(listen_fd_);
  listen_fd_ = -1;
  {
    // Unblock every connection thread stuck in recv — but with SHUT_RD
    // only: a thread mid-send of a large response keeps its write side and
    // finishes the frame. (A full SHUT_RDWR here used to cut responses off
    // mid-send when Stop raced an in-flight reply.)
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (const auto& connection : connections_) {
      net::ShutdownReadFd(connection->fd);
    }
  }
  // Grace period: wait for the in-flight responses to finish, bounded by
  // drain_timeout_ms, then cut whatever is still stuck (a peer that has
  // stopped reading can stall a send indefinitely).
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.drain_timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    bool all_done = true;
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      for (const auto& connection : connections_) {
        if (!connection->done.load(std::memory_order_acquire)) {
          all_done = false;
          break;
        }
      }
    }
    if (all_done) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (const auto& connection : connections_) {
      if (!connection->done.load(std::memory_order_acquire)) {
        net::ShutdownFd(connection->fd);
      }
    }
  }
  ReapConnections(/*all=*/true);
}

ShbfServer::Counters ShbfServer::counters() const {
  // Both modes feed the same four atomics (the event loop through its
  // owner-counter hooks), so there is nothing mode-specific to fold in.
  Counters counters;
  counters.connections = connections_accepted_.load();
  counters.frames = frames_served_.load();
  counters.keys_queried = keys_queried_.load();
  counters.protocol_errors = protocol_errors_.load();
  counters.version = kShbfVersion;
  if (start_time_ != std::chrono::steady_clock::time_point{}) {
    counters.uptime_seconds = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::steady_clock::now() - start_time_)
            .count());
  }
  return counters;
}

obs::MetricsSnapshot ShbfServer::CollectMetrics() const {
  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  const Counters core = counters();
  snapshot.uptime_seconds = core.uptime_seconds;
  snapshot.version = core.version;
  snapshot.dispatch = simd::LevelName(simd::ActiveLevel());
  snapshot.counters.emplace_back("server.connections_total",
                                 core.connections);
  snapshot.counters.emplace_back("server.frames_total", core.frames);
  snapshot.counters.emplace_back("server.keys_queried_total",
                                 core.keys_queried);
  snapshot.counters.emplace_back("server.protocol_errors_total",
                                 core.protocol_errors);
  snapshot.counters.emplace_back("server.slow_requests_total",
                                 trace_ring_.slow_count());
  snapshot.counters.emplace_back("server.traces_recorded_total",
                                 trace_ring_.recorded());
  snapshot.SortByName();
  return snapshot;
}

uint64_t ShbfServer::active_connections() const {
  if (loop_ != nullptr) return loop_->active_connections();
  uint64_t live = 0;
  std::lock_guard<std::mutex> lock(connections_mu_);
  for (const auto& connection : connections_) {
    if (!connection->done.load(std::memory_order_acquire)) ++live;
  }
  return live;
}

void ShbfServer::AcceptLoop() {
  while (running()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (!running()) break;
      // Transient failure (EMFILE under load): back off instead of
      // spinning the core the connection threads need.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    if (!running()) {
      net::CloseFd(fd);
      break;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto connection = std::make_unique<LegacyConnection>();
    connection->fd = fd;
    LegacyConnection* raw = connection.get();
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread(&ShbfServer::ServeConnection, this, raw);
    ReapConnections(/*all=*/false);
  }
}

void ShbfServer::ReapConnections(bool all) {
  std::lock_guard<std::mutex> lock(connections_mu_);
  auto it = connections_.begin();
  while (it != connections_.end()) {
    LegacyConnection& connection = **it;
    if (!all && !connection.done.load(std::memory_order_acquire)) {
      ++it;
      continue;
    }
    if (connection.thread.joinable()) connection.thread.join();
    net::CloseFd(connection.fd);
    it = connections_.erase(it);
  }
}

void ShbfServer::ServeConnection(LegacyConnection* connection) {
  const int fd = connection->fd;
  bool hello_done = false;
  std::string body;
  while (running()) {
    const net::FrameRead read =
        net::ReadFrame(fd, options_.max_frame_bytes, &body);
    if (read == net::FrameRead::kClosed ||
        read == net::FrameRead::kTruncated) {
      // Peer hung up (possibly mid-frame): nothing to answer.
      break;
    }
    if (read == net::FrameRead::kTooLarge) {
      net::SendFrame(fd, Error(wire::WireStatus::kTooLarge,
                               "frame exceeds the body limit")
                             .frame);
      break;
    }
    if (read == net::FrameRead::kEmpty) {
      net::SendFrame(fd, Error(wire::WireStatus::kBadFrame,
                               "zero-length frame")
                             .frame);
      break;
    }
    // Legacy mode handles each frame inline with the read, so there is no
    // queue and queue_wait_us is genuinely 0; the fd doubles as the id.
    server::EventLoop::FrameContext context;
    context.connection_id = static_cast<uint64_t>(fd);
    Response response = HandleFrame(body, &hello_done, context);
    if (!net::SendFrame(fd, response.frame)) break;
    if (response.close_connection) break;
  }
  // FIN the peer now; the fd itself is closed once (in ReapConnections)
  // after this thread is joined, so the number can't be recycled under a
  // concurrent Stop().
  net::ShutdownFd(fd);
  connection->done.store(true, std::memory_order_release);
}

ShbfServer::Response ShbfServer::HandleFrame(
    std::string_view body, bool* hello_done,
    const server::EventLoop::FrameContext& context) {
  // Before the handler, not after: a METRICS frame must see itself in
  // frames_total, so its snapshot is bit-identical to a counters() read
  // taken once the response has arrived (the parity contract).
  frames_served_.fetch_add(1, std::memory_order_relaxed);
  if (!obs::Enabled()) return HandleRequest(body, hello_done);
  const auto opcode_byte =
      body.empty() ? uint8_t{0} : static_cast<uint8_t>(body[0]);
  const bool known_opcode =
      opcode_byte < kOpcodeSlots && op_metrics_[opcode_byte].frames != nullptr;
  // Per-opcode frame counts share the parity contract: counted before the
  // handler, so "server.op.metrics.frames_total" in a METRICS snapshot
  // already includes the frame that produced it.
  if (known_opcode) op_metrics_[opcode_byte].frames->Increment();
  const auto start = std::chrono::steady_clock::now();
  Response response = HandleRequest(body, hello_done);
  const auto handle_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  if (known_opcode) op_metrics_[opcode_byte].handle_us->Record(handle_us);
  queue_wait_us_->Record(context.queue_wait_us);
  obs::RequestTrace trace;
  trace.connection_id = context.connection_id;
  trace.opcode = opcode_byte;
  trace.opcode_name =
      wire::OpcodeName(static_cast<wire::Opcode>(opcode_byte));
  trace.key_count = response.keys_touched;
  trace.bytes_in = body.size();
  trace.bytes_out = response.frame.size();
  trace.queue_wait_us = context.queue_wait_us;
  trace.handle_us = handle_us;
  trace_ring_.Record(trace);
  return response;
}

ShbfServer::Response ShbfServer::HandleRequest(std::string_view body,
                                               bool* hello_done) {
  ByteReader reader(body);
  uint8_t opcode_byte = 0;
  reader.GetU8(&opcode_byte);  // body is non-empty (kEmpty handled earlier)
  const auto opcode = static_cast<wire::Opcode>(opcode_byte);
  if (!*hello_done && opcode != wire::Opcode::kHello) {
    return Error(wire::WireStatus::kBadFrame,
                 "the first frame on a connection must be HELLO");
  }
  switch (opcode) {
    case wire::Opcode::kHello:
      return HandleHello(&reader, hello_done);
    case wire::Opcode::kQuery:
      return HandleQuery(&reader);
    case wire::Opcode::kAdd:
      return HandleAdd(&reader);
    case wire::Opcode::kRemove:
      return HandleRemove(&reader);
    case wire::Opcode::kStats:
      return HandleStats(&reader);
    case wire::Opcode::kList:
      return HandleList();
    case wire::Opcode::kSnapshot:
      return HandleSnapshot(&reader);
    case wire::Opcode::kReload:
      return HandleReload(&reader);
    case wire::Opcode::kWhichSets:
      return HandleWhichSets(&reader);
    case wire::Opcode::kIndexAdd:
      return HandleIndexAdd(&reader);
    case wire::Opcode::kIndexDrop:
      return HandleIndexDrop(&reader);
    case wire::Opcode::kMultisetList:
      return HandleMultisetList();
    case wire::Opcode::kMetrics:
      return HandleMetrics(&reader);
  }
  return Error(wire::WireStatus::kUnknownOpcode,
               "unknown opcode " + std::to_string(opcode_byte));
}

ShbfServer::Response ShbfServer::HandleHello(ByteReader* reader,
                                             bool* hello_done) {
  uint32_t magic = 0;
  uint8_t version = 0;
  if (!reader->GetU32(&magic) || !reader->GetU8(&version) ||
      !reader->AtEnd()) {
    return Error(wire::WireStatus::kBadFrame, "malformed HELLO");
  }
  if (magic != wire::kMagic) {
    return Error(wire::WireStatus::kBadFrame, "bad HELLO magic");
  }
  // v2 and v3 only ADDED opcodes, so every older client's frames are still
  // served verbatim — accept 1..kProtocolVersion and echo the version this
  // connection will speak. Unknown (future/zero) versions stay loud.
  if (version < wire::kMinProtocolVersion ||
      version > wire::kProtocolVersion) {
    return Error(wire::WireStatus::kVersionMismatch,
                 "client speaks protocol " + std::to_string(version) +
                     ", server supports " +
                     std::to_string(wire::kMinProtocolVersion) + ".." +
                     std::to_string(wire::kProtocolVersion));
  }
  *hello_done = true;
  ByteWriter writer;
  writer.PutU8(version);
  wire::WriteString(&writer, std::string("shbf_server ") + kShbfVersion);
  return Response{wire::BuildOk(writer.Take()), false};
}

ShbfServer::Served* ShbfServer::ResolveFilter(ByteReader* reader,
                                              Response* error) {
  std::string name;
  if (!wire::ReadString(reader, wire::kMaxNameBytes, &name)) {
    *error = Error(wire::WireStatus::kBadFrame, "malformed filter name");
    return nullptr;
  }
  auto it = served_.find(name);
  if (it == served_.end()) {
    *error = Error(wire::WireStatus::kUnknownFilter,
                   "no filter served as '" + name + "'");
    return nullptr;
  }
  return it->second.get();
}

ShbfServer::Response ShbfServer::HandleQuery(ByteReader* reader) {
  Response error;
  Served* served = ResolveFilter(reader, &error);
  if (served == nullptr) return error;
  uint8_t mode_byte = 0;
  if (!reader->GetU8(&mode_byte) ||
      mode_byte > static_cast<uint8_t>(wire::QueryMode::kCount)) {
    return Error(wire::WireStatus::kBadFrame, "QUERY: bad mode");
  }
  std::vector<std::string> keys;
  if (!serde::ReadKeyList(reader, &keys) || !reader->AtEnd()) {
    return Error(wire::WireStatus::kBadFrame, "QUERY: malformed key list");
  }
  if (keys.size() > options_.max_keys_per_frame) {
    return Error(wire::WireStatus::kTooLarge,
                 "QUERY: " + std::to_string(keys.size()) +
                     " keys exceed the per-frame limit");
  }
  const auto mode = static_cast<wire::QueryMode>(mode_byte);
  ByteWriter writer;
  writer.PutU8(mode_byte);
  writer.PutU64(keys.size());
  if (mode == wire::QueryMode::kMembership) {
    std::vector<uint8_t> results;
    {
      std::shared_lock<std::shared_mutex> lock(served->mu);
      engine_.ContainsBatch(*served->filter, keys, &results);
    }
    for (uint8_t result : results) writer.PutU8(result != 0 ? 1 : 0);
  } else {
    std::vector<uint64_t> counts;
    {
      // The multiplicity view swaps together with the filter under this
      // lock (RELOAD), so both the null check and the use belong inside.
      std::shared_lock<std::shared_mutex> lock(served->mu);
      if (served->multiplicity == nullptr) {
        return Error(wire::WireStatus::kUnsupported,
                     std::string(served->filter->name()) +
                         ": not a multiplicity filter (COUNT unsupported)");
      }
      engine_.QueryCountBatch(*served->multiplicity, keys, &counts);
    }
    for (uint64_t count : counts) writer.PutU64(count);
  }
  keys_queried_.fetch_add(keys.size(), std::memory_order_relaxed);
  return Response{wire::BuildOk(writer.Take()), false,
                  static_cast<uint32_t>(keys.size())};
}

ShbfServer::Response ShbfServer::HandleAdd(ByteReader* reader) {
  Response error;
  Served* served = ResolveFilter(reader, &error);
  if (served == nullptr) return error;
  std::vector<std::string> keys;
  if (!serde::ReadKeyList(reader, &keys) || !reader->AtEnd()) {
    return Error(wire::WireStatus::kBadFrame, "ADD: malformed key list");
  }
  if (keys.size() > options_.max_keys_per_frame) {
    return Error(wire::WireStatus::kTooLarge,
                 "ADD: " + std::to_string(keys.size()) +
                     " keys exceed the per-frame limit");
  }
  {
    std::unique_lock<std::shared_mutex> lock(served->mu);
    if (served->read_only) {
      return Error(wire::WireStatus::kUnsupported,
                   "ADD: filter serves a read-only mapped image; RELOAD a "
                   "heap snapshot to mutate");
    }
    for (const auto& key : keys) served->filter->Add(key);
    // Fold any deferred rebuild into this writer section, so subsequent
    // reads stay pure under the shared lock.
    served->filter->PrepareForConstReads();
  }
  ByteWriter writer;
  writer.PutU64(keys.size());
  return Response{wire::BuildOk(writer.Take()), false,
                  static_cast<uint32_t>(keys.size())};
}

ShbfServer::Response ShbfServer::HandleRemove(ByteReader* reader) {
  Response error;
  Served* served = ResolveFilter(reader, &error);
  if (served == nullptr) return error;
  std::vector<std::string> keys;
  if (!serde::ReadKeyList(reader, &keys) || !reader->AtEnd()) {
    return Error(wire::WireStatus::kBadFrame, "REMOVE: malformed key list");
  }
  if (keys.size() > options_.max_keys_per_frame) {
    return Error(wire::WireStatus::kTooLarge,
                 "REMOVE: " + std::to_string(keys.size()) +
                     " keys exceed the per-frame limit");
  }
  std::vector<uint8_t> removed(keys.size(), 0);
  {
    std::unique_lock<std::shared_mutex> lock(served->mu);
    if (served->read_only) {
      return Error(wire::WireStatus::kUnsupported,
                   "REMOVE: filter serves a read-only mapped image; RELOAD "
                   "a heap snapshot to mutate");
    }
    if ((served->filter->capabilities() & kRemove) == 0) {
      return Error(wire::WireStatus::kUnsupported,
                   std::string(served->filter->name()) +
                       ": filter does not support REMOVE");
    }
    for (size_t i = 0; i < keys.size(); ++i) {
      removed[i] = served->filter->Remove(keys[i]).ok() ? 1 : 0;
    }
    served->filter->PrepareForConstReads();
  }
  ByteWriter writer;
  writer.PutU64(removed.size());
  for (uint8_t result : removed) writer.PutU8(result);
  return Response{wire::BuildOk(writer.Take()), false,
                  static_cast<uint32_t>(keys.size())};
}

ShbfServer::Response ShbfServer::HandleStats(ByteReader* reader) {
  Response error;
  Served* served = ResolveFilter(reader, &error);
  if (served == nullptr) return error;
  if (!reader->AtEnd()) {
    return Error(wire::WireStatus::kBadFrame, "STATS: trailing bytes");
  }
  ByteWriter writer;
  {
    std::shared_lock<std::shared_mutex> lock(served->mu);
    WriteStatsRecord(&writer, *served->filter);
  }
  return Response{wire::BuildOk(writer.Take()), false};
}

ShbfServer::Response ShbfServer::HandleList() {
  ByteWriter writer;
  writer.PutU32(static_cast<uint32_t>(served_.size()));
  for (const auto& [serve_name, served] : served_) {
    wire::WriteString(&writer, serve_name);
    std::shared_lock<std::shared_mutex> lock(served->mu);
    WriteStatsRecord(&writer, *served->filter);
  }
  return Response{wire::BuildOk(writer.Take()), false};
}

ShbfServer::Response ShbfServer::HandleSnapshot(ByteReader* reader) {
  Response error;
  Served* served = ResolveFilter(reader, &error);
  if (served == nullptr) return error;
  std::string path;
  if (!wire::ReadString(reader, wire::kMaxPathBytes, &path) ||
      !reader->AtEnd()) {
    return Error(wire::WireStatus::kBadFrame, "SNAPSHOT: malformed path");
  }
  std::string blob;
  {
    // Exclusive: ToBytes is outside the PrepareForConstReads purity
    // promise, so don't let it race shared-lock readers.
    std::unique_lock<std::shared_mutex> lock(served->mu);
    if (path.empty()) path = served->source_path;
    if (path.empty()) {
      return Error(wire::WireStatus::kIoError,
                   "SNAPSHOT: no path given and none remembered");
    }
    std::string image_path = path;
    if (StripMmapPrefix(&image_path)) {
      // Flat-image snapshot. The saver borrows pointers into the live
      // array, so the write (temp + msync + rename; crash-consistent)
      // happens under the writer lock — unlike the heap branch there is
      // no intermediate blob to copy out.
      const uint64_t generation = served->snapshot_generation + 1;
      Status s = FilterRegistry::Global().SaveMapped(*served->filter,
                                                     image_path, generation);
      if (!s.ok()) {
        return Error(wire::WireStatus::kIoError, "SNAPSHOT: " + s.ToString());
      }
      served->snapshot_generation = generation;
      served->source_path = path;  // keep the mmap: prefix
      struct stat st {};
      const uint64_t written =
          ::stat(image_path.c_str(), &st) == 0
              ? static_cast<uint64_t>(st.st_size)
              : 0;
      ByteWriter writer;
      writer.PutU64(written);
      wire::WriteString(&writer, path);
      return Response{wire::BuildOk(writer.Take()), false};
    }
    blob = FilterRegistry::Serialize(*served->filter);
  }
  // File I/O outside the lock; the remembered path only moves to the new
  // target once the bytes are actually on disk.
  Status s = WriteStringToFile(path, blob);
  if (!s.ok()) {
    return Error(wire::WireStatus::kIoError, "SNAPSHOT: " + s.ToString());
  }
  {
    std::unique_lock<std::shared_mutex> lock(served->mu);
    served->source_path = path;
  }
  ByteWriter writer;
  writer.PutU64(blob.size());
  wire::WriteString(&writer, path);
  return Response{wire::BuildOk(writer.Take()), false};
}

ShbfServer::Response ShbfServer::HandleReload(ByteReader* reader) {
  Response error;
  Served* served = ResolveFilter(reader, &error);
  if (served == nullptr) return error;
  std::string path;
  if (!wire::ReadString(reader, wire::kMaxPathBytes, &path) ||
      !reader->AtEnd()) {
    return Error(wire::WireStatus::kBadFrame, "RELOAD: malformed path");
  }
  if (path.empty()) {
    std::shared_lock<std::shared_mutex> lock(served->mu);
    path = served->source_path;
  }
  if (path.empty()) {
    return Error(wire::WireStatus::kIoError,
                 "RELOAD: no path given and none remembered");
  }
  // Read + deserialize + prepare outside the lock: queries keep flowing
  // against the old filter until the swap below.
  std::unique_ptr<MembershipFilter> fresh;
  bool fresh_read_only = false;
  uint64_t fresh_generation = 0;
  std::string image_path = path;
  if (StripMmapPrefix(&image_path)) {
    // Flat image: verify checksums once, then serve zero-copy (read-only).
    Status s = FilterRegistry::Global().OpenMapped(
        image_path, &fresh, storage::OpenOptions{.verify_payload = true});
    if (!s.ok()) {
      return Error(wire::WireStatus::kIoError, "RELOAD: " + s.ToString());
    }
    fresh_read_only = true;
    fresh_generation =
        static_cast<const storage::MappedFilter*>(fresh.get())->generation();
  } else {
    std::string blob;
    Status s = ReadFileToString(path, &blob);
    if (!s.ok()) {
      return Error(wire::WireStatus::kIoError, "RELOAD: " + s.ToString());
    }
    s = FilterRegistry::Global().Deserialize(blob, &fresh);
    if (!s.ok()) {
      return Error(wire::WireStatus::kIoError, "RELOAD: " + s.ToString());
    }
  }
  fresh->PrepareForConstReads();
  uint64_t elements = 0;
  {
    std::unique_lock<std::shared_mutex> lock(served->mu);
    served->multiplicity = dynamic_cast<MultiplicityFilter*>(fresh.get());
    served->filter = std::move(fresh);
    served->source_path = path;
    served->read_only = fresh_read_only;
    if (fresh_read_only) served->snapshot_generation = fresh_generation;
    elements = served->filter->num_elements();
  }
  ByteWriter writer;
  writer.PutU64(elements);
  return Response{wire::BuildOk(writer.Take()), false};
}

ShbfServer::Response ShbfServer::HandleWhichSets(ByteReader* reader) {
  std::vector<std::string> keys;
  if (!serde::ReadKeyList(reader, &keys) || !reader->AtEnd()) {
    return Error(wire::WireStatus::kBadFrame,
                 "WHICH_SETS: malformed key list");
  }
  if (keys.size() > options_.max_keys_per_frame) {
    return Error(wire::WireStatus::kTooLarge,
                 "WHICH_SETS: " + std::to_string(keys.size()) +
                     " keys exceed the per-frame limit");
  }
  std::vector<SetIdBitmap> answers;
  {
    std::shared_lock<std::shared_mutex> lock(multiset_mu_);
    if (multiset_ == nullptr) {
      return Error(wire::WireStatus::kUnsupported,
                   "WHICH_SETS: no multiset catalog is served");
    }
    // Scratch for this opcode scales with keys × id_bound (one bitmap per
    // key), which the per-frame KEY limit alone does not bound: against a
    // 2^20-id catalog, a maximal frame would allocate >100 GiB before the
    // response-size guard below could run. Budget the product up front.
    constexpr size_t kMaxScratchBytes = size_t{256} << 20;  // 256 MiB
    const size_t bitmap_bytes = (multiset_->id_bound() + 7) / 8;
    if (bitmap_bytes != 0 && keys.size() > kMaxScratchBytes / bitmap_bytes) {
      return Error(wire::WireStatus::kTooLarge,
                   "WHICH_SETS: " + std::to_string(keys.size()) +
                       " keys against a " +
                       std::to_string(multiset_->id_bound()) +
                       "-id catalog exceed the per-frame answer budget; "
                       "send fewer keys per frame");
    }
    multiset_->WhichSetsBatch(keys, &answers);
  }
  // WHICH_SETS is the first response whose size scales with the ANSWER
  // (keys × matching ids), not just the request: bound it while building,
  // or a legal frame against a many-set catalog could produce a response
  // the peer must reject — and past 4 GiB, one whose u32 length prefix
  // silently wraps.
  ByteWriter writer;
  writer.PutU64(answers.size());
  for (const SetIdBitmap& bitmap : answers) {
    const std::vector<uint32_t> ids = bitmap.ToIds();
    writer.PutU32(static_cast<uint32_t>(ids.size()));
    for (uint32_t id : ids) writer.PutU32(id);
    if (writer.size() + 1 > options_.max_frame_bytes) {  // +1: status byte
      return Error(wire::WireStatus::kTooLarge,
                   "WHICH_SETS: response exceeds the frame limit; send "
                   "fewer keys per frame");
    }
  }
  keys_queried_.fetch_add(keys.size(), std::memory_order_relaxed);
  return Response{wire::BuildOk(writer.Take()), false,
                  static_cast<uint32_t>(keys.size())};
}

ShbfServer::Response ShbfServer::HandleIndexAdd(ByteReader* reader) {
  std::string name;
  if (!wire::ReadString(reader, wire::kMaxNameBytes, &name)) {
    return Error(wire::WireStatus::kBadFrame, "INDEX_ADD: malformed name");
  }
  std::vector<std::string> keys;
  if (!serde::ReadKeyList(reader, &keys) || !reader->AtEnd()) {
    return Error(wire::WireStatus::kBadFrame,
                 "INDEX_ADD: malformed key list");
  }
  if (keys.size() > options_.max_keys_per_frame) {
    return Error(wire::WireStatus::kTooLarge,
                 "INDEX_ADD: " + std::to_string(keys.size()) +
                     " keys exceed the per-frame limit");
  }
  {
    std::unique_lock<std::shared_mutex> lock(multiset_mu_);
    if (multiset_ == nullptr) {
      return Error(wire::WireStatus::kUnsupported,
                   "INDEX_ADD: no multiset catalog is served");
    }
    const SetCatalog::SetEntry* entry = catalog_.Find(name);
    if (entry == nullptr) {
      return Error(wire::WireStatus::kUnknownFilter,
                   "INDEX_ADD: no set named '" + name + "'");
    }
    Status s = multiset_->AddKeys(entry->id, keys);
    if (!s.ok()) {
      return Error(wire::WireStatus::kInternal, "INDEX_ADD: " + s.ToString());
    }
    // Fold any deferred rebuild into this writer section, so WHICH_SETS
    // reads stay pure under the shared lock.
    multiset_->PrepareForConstReads();
  }
  ByteWriter writer;
  writer.PutU64(keys.size());
  return Response{wire::BuildOk(writer.Take()), false,
                  static_cast<uint32_t>(keys.size())};
}

ShbfServer::Response ShbfServer::HandleIndexDrop(ByteReader* reader) {
  std::string name;
  if (!wire::ReadString(reader, wire::kMaxNameBytes, &name) ||
      !reader->AtEnd()) {
    return Error(wire::WireStatus::kBadFrame, "INDEX_DROP: malformed name");
  }
  uint64_t remaining = 0;
  {
    std::unique_lock<std::shared_mutex> lock(multiset_mu_);
    if (multiset_ == nullptr) {
      return Error(wire::WireStatus::kUnsupported,
                   "INDEX_DROP: no multiset catalog is served");
    }
    const SetCatalog::SetEntry* entry = catalog_.Find(name);
    if (entry == nullptr) {
      return Error(wire::WireStatus::kUnknownFilter,
                   "INDEX_DROP: no set named '" + name + "'");
    }
    // Index first (it drops its pointer), then the catalog frees the
    // filter — the order the MultiSetIndex contract requires.
    Status s = multiset_->RemoveSet(entry->id);
    if (s.ok()) s = catalog_.DropSet(name);
    if (!s.ok()) {
      return Error(wire::WireStatus::kInternal,
                   "INDEX_DROP: " + s.ToString());
    }
    remaining = catalog_.size();
  }
  ByteWriter writer;
  writer.PutU64(remaining);
  return Response{wire::BuildOk(writer.Take()), false};
}

ShbfServer::Response ShbfServer::HandleMultisetList() {
  ByteWriter writer;
  {
    std::shared_lock<std::shared_mutex> lock(multiset_mu_);
    if (multiset_ == nullptr) {
      return Error(wire::WireStatus::kUnsupported,
                   "MULTISET_LIST: no multiset catalog is served");
    }
    const MultiSetIndex::Stats stats = multiset_->stats();
    writer.PutU32(static_cast<uint32_t>(catalog_.size()));
    writer.PutU32(static_cast<uint32_t>(stats.trees));
    writer.PutU32(static_cast<uint32_t>(stats.scan_leaves));
    writer.PutU32(static_cast<uint32_t>(stats.levels));
    writer.PutU64(stats.summary_memory_bytes);
    for (const SetCatalog::SetEntry* entry : catalog_.Entries()) {
      writer.PutU32(entry->id);
      wire::WriteString(&writer, entry->name);
      wire::WriteString(&writer, entry->filter->name());
      writer.PutU64(entry->filter->num_elements());
    }
  }
  return Response{wire::BuildOk(writer.Take()), false};
}

ShbfServer::Response ShbfServer::HandleMetrics(ByteReader* reader) {
  if (!reader->AtEnd()) {
    return Error(wire::WireStatus::kBadFrame, "METRICS: trailing bytes");
  }
  const obs::MetricsSnapshot snapshot = CollectMetrics();
  ByteWriter writer;
  writer.PutU64(snapshot.uptime_seconds);
  wire::WriteString(&writer, snapshot.version);
  wire::WriteString(&writer, snapshot.dispatch);
  writer.PutU32(static_cast<uint32_t>(snapshot.counters.size()));
  for (const auto& [name, value] : snapshot.counters) {
    wire::WriteString(&writer, name);
    writer.PutU64(value);
  }
  writer.PutU32(static_cast<uint32_t>(snapshot.gauges.size()));
  for (const auto& [name, value] : snapshot.gauges) {
    wire::WriteString(&writer, name);
    // Two's complement through u64; the client casts back.
    writer.PutU64(static_cast<uint64_t>(value));
  }
  writer.PutU32(static_cast<uint32_t>(snapshot.histograms.size()));
  for (const obs::HistogramSnapshot& h : snapshot.histograms) {
    wire::WriteString(&writer, h.name);
    writer.PutU64(h.count);
    writer.PutU64(h.sum);
    writer.PutU32(static_cast<uint32_t>(h.buckets.size()));
    for (uint64_t bucket : h.buckets) writer.PutU64(bucket);
  }
  if (writer.size() + 1 > options_.max_frame_bytes) {  // +1: status byte
    return Error(wire::WireStatus::kTooLarge,
                 "METRICS: snapshot exceeds the frame limit");
  }
  return Response{wire::BuildOk(writer.Take()), false};
}

ShbfServer::Response ShbfServer::Error(wire::WireStatus status,
                                       std::string_view message) {
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  return Response{wire::BuildError(status, message), wire::IsFatal(status)};
}

}  // namespace shbf
