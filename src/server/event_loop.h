// EventLoop — the epoll serving core behind ShbfServer's default mode:
// one loop thread multiplexing every connection (nonblocking accept,
// buffered framed reads tolerating arbitrary fragmentation, buffered
// writes surviving short writes) plus a fixed worker pool draining a
// frame-batch queue, so request processing — the BatchQueryEngine passes,
// filter locks, snapshot I/O — never runs on, or blocks, the loop thread.
//
// Flow of one request frame:
//
//   epoll_wait → read() until EAGAIN → FrameSplitter pops 1..N pipelined
//   frames → conn.pending → (if no batch in flight) dispatch a batch to
//   the work queue → a worker runs the frame handler per frame, in order,
//   concatenating response frames → completion queue + eventfd wakeup →
//   loop appends to conn.outbuf, flushes, arms EPOLLOUT for the rest
//
// Ordering: at most ONE batch per connection is in flight, so pipelined
// responses leave in request order; across connections workers run freely
// in parallel (per-filter locks serialize what must be serialized).
//
// Backpressure: a connection whose parsed-frame backlog or output buffer
// crosses its high-watermark stops being read (EPOLLIN dropped) until the
// workers/peer catch up — a slow-loris or never-reading peer idles its own
// connection and nothing else. Memory per connection is thereby bounded by
// max_frame_bytes + the watermarks.
//
// Stop() drains deterministically: stop accepting and reading, let
// in-flight batches complete, then keep flushing pending responses until
// every buffer empties or drain_timeout_ms passes — only stalled peers
// get their connections aborted. See docs/serving.md §2.
//
// The loop knows framing, not the protocol: the owner supplies the frame
// handler and the two canned framing-violation responses.

#ifndef SHBF_SERVER_EVENT_LOOP_H_
#define SHBF_SERVER_EVENT_LOOP_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/status.h"
#include "server/connection.h"

namespace shbf {
namespace server {

struct EventLoopOptions {
  /// Per-frame body ceiling (mirrors wire::kMaxFrameBytes).
  size_t max_frame_bytes = size_t{1} << 26;

  /// Worker threads draining the frame-batch queue. 0 = one per hardware
  /// thread, clamped to [1, 8].
  size_t num_workers = 0;

  /// Accepted-connection ceiling; past it new sockets are accepted and
  /// immediately closed (so the backlog can't silently fill). 0 = none.
  size_t max_connections = 0;

  /// Most frames handed to a worker as one batch.
  size_t max_batch_frames = 64;

  /// Parsed-frame backlog per connection before its reads pause.
  size_t max_pending_frames = 256;

  /// Output-buffer bytes per connection before its reads pause.
  size_t max_output_bytes = size_t{8} << 20;  // 8 MiB

  /// Stop(): how long to keep flushing pending responses before aborting
  /// connections whose peers have stalled.
  int drain_timeout_ms = 5000;

  /// Canned responses for framing violations (already length-prefixed);
  /// sent in pipeline order, then the connection closes.
  std::string empty_frame_response;
  std::string too_large_response;

  /// Owner-supplied counters the loop feeds alongside its internal ones,
  /// so ShbfServer::counters() reports identical semantics in epoll and
  /// legacy modes (the legacy paths increment the same atomics directly).
  /// Optional; both may be null.
  std::atomic<uint64_t>* connections_counter = nullptr;     ///< accepts
  std::atomic<uint64_t>* framing_errors_counter = nullptr;  ///< violations
};

class EventLoop {
 public:
  /// What the frame handler returns for one request body.
  struct FrameResult {
    std::string frame;  ///< complete response (length prefix included)
    bool close_connection = false;
  };

  /// Per-frame serving context the loop knows and the handler does not:
  /// which connection, and how long the frame waited parsed-but-unserved
  /// before a worker picked it up (0 when metrics are disabled, and in
  /// the legacy server, which handles frames inline with the read).
  struct FrameContext {
    uint64_t connection_id = 0;
    uint64_t queue_wait_us = 0;
  };

  /// Runs on worker threads. Must be safe to call concurrently for
  /// DIFFERENT connections; calls for one connection are serialized by
  /// the one-batch-in-flight rule. `*hello_done` is the connection's
  /// handshake state.
  using FrameHandler = std::function<FrameResult(
      std::string_view body, bool* hello_done, const FrameContext& context)>;

  /// Takes ownership of `listen_fd` (made nonblocking in Start).
  EventLoop(int listen_fd, EventLoopOptions options, FrameHandler handler);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Spawns the loop thread and the worker pool.
  Status Start();

  /// Drains (see file comment) and joins every thread. Idempotent.
  void Stop();

  /// Connections accepted since Start (rejected-over-limit ones excluded).
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

  /// Connections accepted and immediately closed over max_connections.
  uint64_t connections_rejected() const {
    return connections_rejected_.load(std::memory_order_relaxed);
  }

  /// Framing violations answered with a canned response (zero-length or
  /// oversized prefixes) — the loop-level protocol errors.
  uint64_t framing_errors() const {
    return framing_errors_.load(std::memory_order_relaxed);
  }

  /// Currently-open connections (0 after Stop): the fuzz suite's
  /// slot-leak probe, and an operator liveness signal.
  uint64_t active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }

 private:
  struct Work {
    std::shared_ptr<Connection> conn;
    std::vector<PendingFrame> frames;
  };
  struct Completion {
    std::shared_ptr<Connection> conn;
    std::string output;         ///< concatenated response frames, in order
    bool close_connection = false;
  };

  void LoopThread();
  void WorkerThread();

  // ---- loop-thread helpers (never called from workers) ----
  void HandleAccept();
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  void HandleWritable(const std::shared_ptr<Connection>& conn);
  void DrainCompletions();
  void MaybeDispatch(const std::shared_ptr<Connection>& conn);
  /// Writes outbuf until EAGAIN/empty; kills the connection on error.
  /// Returns false when the connection died.
  bool Flush(const std::shared_ptr<Connection>& conn);
  /// Recomputes and applies the connection's epoll interest mask.
  void UpdateInterest(const std::shared_ptr<Connection>& conn);
  /// Closes the fd, removes the connection from the map and epoll.
  void Kill(const std::shared_ptr<Connection>& conn);
  /// True while reads are paused for backpressure.
  bool ReadsPaused(const Connection& conn) const;
  /// The shutdown phase of the loop thread: drain then close everything.
  void DrainAndClose();

  void WakeLoop();

  EventLoopOptions options_;
  FrameHandler handler_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread loop_thread_;

  // Work queue: loop → workers.
  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<Work> work_queue_;
  bool workers_stop_ = false;
  std::vector<std::thread> workers_;

  // Completion queue: workers → loop (paired with a wake_fd_ write).
  std::mutex completion_mu_;
  std::vector<Completion> completions_;

  /// fd → connection; entries are erased in Kill, never elsewhere.
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;
  uint64_t next_connection_id_ = 1;
  /// Batches at the workers; the Stop drain waits for this to hit zero.
  size_t batches_in_flight_ = 0;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::atomic<uint64_t> framing_errors_{0};
  std::atomic<uint64_t> active_connections_{0};
};

}  // namespace server
}  // namespace shbf

#endif  // SHBF_SERVER_EVENT_LOOP_H_
