#include "server/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace shbf {
namespace net {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

int ListenTcp(const std::string& bind_address, uint16_t port, Status* status) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *status = Status::Internal(Errno("socket"));
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    *status = Status::InvalidArgument("bad bind address: " + bind_address);
    CloseFd(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *status = Status::Internal(Errno("bind " + bind_address));
    CloseFd(fd);
    return -1;
  }
  // 1024: the event loop accepts whole bursts per wakeup, so the backlog
  // only needs to absorb one scheduling gap even at C10K connect storms.
  if (::listen(fd, 1024) != 0) {
    *status = Status::Internal(Errno("listen"));
    CloseFd(fd);
    return -1;
  }
  *status = Status::Ok();
  return fd;
}

uint16_t LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

int ConnectTcp(const std::string& host, uint16_t port, Status* status) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const std::string service = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &results);
  if (rc != 0) {
    *status = Status::NotFound("resolve " + host + ": " + gai_strerror(rc));
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    CloseFd(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  if (fd < 0) {
    *status = Status::Internal(
        Errno("connect " + host + ":" + std::to_string(port)));
    return -1;
  }
  // Batched request/response frames are the unit of latency here; never
  // let Nagle hold a frame back waiting for a segment to fill.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *status = Status::Ok();
  return fd;
}

bool SendAll(int fd, const void* data, size_t len) {
  const char* cursor = static_cast<const char*>(data);
  while (len > 0) {
    // MSG_NOSIGNAL: a peer that hung up surfaces as EPIPE, not SIGPIPE.
    ssize_t sent = ::send(fd, cursor, len, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (sent == 0) return false;
    cursor += sent;
    len -= static_cast<size_t>(sent);
  }
  return true;
}

bool RecvAll(int fd, void* data, size_t len) {
  char* cursor = static_cast<char*>(data);
  while (len > 0) {
    ssize_t got = ::recv(fd, cursor, len, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;
    cursor += got;
    len -= static_cast<size_t>(got);
  }
  return true;
}

FrameRead ReadFrame(int fd, size_t max_frame_bytes, std::string* body) {
  uint8_t prefix[4];
  // Distinguish a clean hang-up (EOF at a frame boundary) from a truncated
  // prefix: read the first byte alone.
  ssize_t got;
  do {
    got = ::recv(fd, prefix, 1, 0);
  } while (got < 0 && errno == EINTR);
  if (got == 0) return FrameRead::kClosed;
  if (got < 0) return FrameRead::kTruncated;
  if (!RecvAll(fd, prefix + 1, 3)) return FrameRead::kTruncated;
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(prefix[i]) << (8 * i);
  }
  if (length == 0) return FrameRead::kEmpty;
  if (length > max_frame_bytes) return FrameRead::kTooLarge;
  body->resize(length);
  if (!RecvAll(fd, body->data(), length)) return FrameRead::kTruncated;
  return FrameRead::kOk;
}

void ShutdownFd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void ShutdownReadFd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RD);
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

IoResult RecvSome(int fd, void* data, size_t len, size_t* transferred) {
  *transferred = 0;
  ssize_t got;
  do {
    got = ::recv(fd, data, len, 0);
  } while (got < 0 && errno == EINTR);
  if (got > 0) {
    *transferred = static_cast<size_t>(got);
    return IoResult::kOk;
  }
  if (got == 0) return IoResult::kEof;
  if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kWouldBlock;
  return IoResult::kError;
}

IoResult SendSome(int fd, const void* data, size_t len, size_t* transferred) {
  *transferred = 0;
  ssize_t sent;
  do {
    sent = ::send(fd, data, len, MSG_NOSIGNAL);
  } while (sent < 0 && errno == EINTR);
  if (sent >= 0) {
    *transferred = static_cast<size_t>(sent);
    return IoResult::kOk;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kWouldBlock;
  return IoResult::kError;
}

}  // namespace net
}  // namespace shbf
