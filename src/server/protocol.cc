#include "server/protocol.h"

namespace shbf {
namespace wire {

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return "OK";
    case WireStatus::kBadFrame:
      return "BAD_FRAME";
    case WireStatus::kUnknownOpcode:
      return "UNKNOWN_OPCODE";
    case WireStatus::kUnknownFilter:
      return "UNKNOWN_FILTER";
    case WireStatus::kUnsupported:
      return "UNSUPPORTED";
    case WireStatus::kTooLarge:
      return "TOO_LARGE";
    case WireStatus::kVersionMismatch:
      return "VERSION_MISMATCH";
    case WireStatus::kIoError:
      return "IO_ERROR";
    case WireStatus::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN_STATUS";
}

const char* OpcodeName(Opcode opcode) {
  switch (opcode) {
    case Opcode::kHello:
      return "HELLO";
    case Opcode::kQuery:
      return "QUERY";
    case Opcode::kAdd:
      return "ADD";
    case Opcode::kRemove:
      return "REMOVE";
    case Opcode::kStats:
      return "STATS";
    case Opcode::kList:
      return "LIST";
    case Opcode::kSnapshot:
      return "SNAPSHOT";
    case Opcode::kReload:
      return "RELOAD";
    case Opcode::kWhichSets:
      return "WHICH_SETS";
    case Opcode::kIndexAdd:
      return "INDEX_ADD";
    case Opcode::kIndexDrop:
      return "INDEX_DROP";
    case Opcode::kMultisetList:
      return "MULTISET_LIST";
    case Opcode::kMetrics:
      return "METRICS";
  }
  return "?";
}

bool IsFatal(WireStatus status) {
  return status == WireStatus::kBadFrame || status == WireStatus::kTooLarge ||
         status == WireStatus::kVersionMismatch;
}

void WriteString(ByteWriter* writer, std::string_view s) {
  writer->PutU32(static_cast<uint32_t>(s.size()));
  writer->PutBytes(s.data(), s.size());
}

bool ReadString(ByteReader* reader, size_t max_bytes, std::string* out) {
  uint32_t length = 0;
  if (!reader->GetU32(&length)) return false;
  if (length > max_bytes || length > reader->remaining()) return false;
  out->resize(length);
  return length == 0 || reader->GetBytes(out->data(), length);
}

std::string Frame(std::string body) {
  ByteWriter writer;
  writer.PutU32(static_cast<uint32_t>(body.size()));
  writer.PutBytes(body.data(), body.size());
  return writer.Take();
}

std::string BuildHello() {
  ByteWriter writer;
  writer.PutU8(static_cast<uint8_t>(Opcode::kHello));
  writer.PutU32(kMagic);
  writer.PutU8(kProtocolVersion);
  return Frame(writer.Take());
}

std::string BuildQuery(std::string_view filter, QueryMode mode,
                       const std::vector<std::string>& keys) {
  ByteWriter writer;
  writer.PutU8(static_cast<uint8_t>(Opcode::kQuery));
  WriteString(&writer, filter);
  writer.PutU8(static_cast<uint8_t>(mode));
  serde::WriteKeyList(&writer, keys);
  return Frame(writer.Take());
}

std::string BuildKeysRequest(Opcode opcode, std::string_view filter,
                             const std::vector<std::string>& keys) {
  ByteWriter writer;
  writer.PutU8(static_cast<uint8_t>(opcode));
  WriteString(&writer, filter);
  serde::WriteKeyList(&writer, keys);
  return Frame(writer.Take());
}

std::string BuildNameRequest(Opcode opcode, std::string_view filter) {
  ByteWriter writer;
  writer.PutU8(static_cast<uint8_t>(opcode));
  WriteString(&writer, filter);
  return Frame(writer.Take());
}

std::string BuildPathRequest(Opcode opcode, std::string_view filter,
                             std::string_view path) {
  ByteWriter writer;
  writer.PutU8(static_cast<uint8_t>(opcode));
  WriteString(&writer, filter);
  WriteString(&writer, path);
  return Frame(writer.Take());
}

std::string BuildEmptyRequest(Opcode opcode) {
  ByteWriter writer;
  writer.PutU8(static_cast<uint8_t>(opcode));
  return Frame(writer.Take());
}

std::string BuildList() { return BuildEmptyRequest(Opcode::kList); }

std::string BuildMetrics() { return BuildEmptyRequest(Opcode::kMetrics); }

std::string BuildWhichSets(const std::vector<std::string>& keys) {
  ByteWriter writer;
  writer.PutU8(static_cast<uint8_t>(Opcode::kWhichSets));
  serde::WriteKeyList(&writer, keys);
  return Frame(writer.Take());
}

std::string BuildError(WireStatus status, std::string_view message) {
  ByteWriter writer;
  writer.PutU8(static_cast<uint8_t>(status));
  WriteString(&writer, message);
  return Frame(writer.Take());
}

std::string BuildOk(std::string_view payload) {
  ByteWriter writer;
  writer.PutU8(static_cast<uint8_t>(WireStatus::kOk));
  writer.PutBytes(payload.data(), payload.size());
  return Frame(writer.Take());
}

bool ParseResponse(std::string_view body, WireStatus* status,
                   std::string_view* payload, std::string* error_message) {
  if (body.empty()) return false;
  *status = static_cast<WireStatus>(static_cast<uint8_t>(body[0]));
  *payload = body.substr(1);
  if (*status != WireStatus::kOk && error_message != nullptr) {
    ByteReader reader(*payload);
    if (!ReadString(&reader, kMaxFrameBytes, error_message)) {
      *error_message = "(malformed error payload)";
    }
  }
  return true;
}

}  // namespace wire
}  // namespace shbf
