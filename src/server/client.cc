#include "server/client.h"

#include <utility>

#include "server/net.h"

namespace shbf {

namespace {

/// Maps a wire error status onto the nearest Status code, carrying the
/// server's message.
Status WireError(wire::WireStatus status, const std::string& message) {
  const std::string text =
      std::string(wire::WireStatusName(status)) + ": " + message;
  switch (status) {
    case wire::WireStatus::kUnknownFilter:
      return Status::NotFound(text);
    case wire::WireStatus::kUnsupported:
      return Status::FailedPrecondition(text);
    case wire::WireStatus::kBadFrame:
    case wire::WireStatus::kUnknownOpcode:
    case wire::WireStatus::kVersionMismatch:
      return Status::InvalidArgument(text);
    case wire::WireStatus::kTooLarge:
      return Status::OutOfRange(text);
    case wire::WireStatus::kIoError:
    case wire::WireStatus::kInternal:
    case wire::WireStatus::kOk:
      break;
  }
  return Status::Internal(text);
}

}  // namespace

ShbfClient::~ShbfClient() { Close(); }

void ShbfClient::Close() {
  net::CloseFd(fd_);
  fd_ = -1;
}

Status ShbfClient::Connect(const std::string& host, uint16_t port) {
  if (connected()) return Status::FailedPrecondition("already connected");
  Status s;
  fd_ = net::ConnectTcp(host, port, &s);
  if (fd_ < 0) return s;
  std::string body;
  std::string_view payload;
  s = RoundTrip(wire::BuildHello(), &body, &payload);
  if (!s.ok()) {
    Close();
    return s;
  }
  ByteReader reader(payload);
  uint8_t version = 0;
  if (!reader.GetU8(&version) ||
      !wire::ReadString(&reader, wire::kMaxNameBytes, &server_version_) ||
      !reader.AtEnd()) {
    Close();
    return Status::Internal("malformed HELLO response");
  }
  return Status::Ok();
}

Status ShbfClient::RoundTrip(const std::string& frame,
                             std::string* response_body,
                             std::string_view* payload) {
  if (!connected()) return Status::FailedPrecondition("not connected");
  if (!net::SendFrame(fd_, frame)) {
    Close();
    return Status::Internal("send failed (connection lost)");
  }
  const net::FrameRead read =
      net::ReadFrame(fd_, wire::kMaxFrameBytes, response_body);
  if (read != net::FrameRead::kOk) {
    Close();
    return Status::Internal("connection closed before a response arrived");
  }
  wire::WireStatus status;
  std::string message;
  if (!wire::ParseResponse(*response_body, &status, payload, &message)) {
    Close();
    return Status::Internal("empty response frame");
  }
  if (status != wire::WireStatus::kOk) {
    // Fatal statuses are followed by a server-side close; drop our end so
    // the next call reports "not connected" instead of a recv error.
    if (wire::IsFatal(status)) Close();
    return WireError(status, message);
  }
  return Status::Ok();
}

Status ShbfClient::Query(std::string_view filter,
                         const std::vector<std::string>& keys,
                         std::vector<uint8_t>* results) {
  std::string body;
  std::string_view payload;
  Status s = RoundTrip(
      wire::BuildQuery(filter, wire::QueryMode::kMembership, keys), &body,
      &payload);
  if (!s.ok()) return s;
  ByteReader reader(payload);
  uint8_t mode = 0;
  uint64_t count = 0;
  if (!reader.GetU8(&mode) || !reader.GetU64(&count) ||
      mode != static_cast<uint8_t>(wire::QueryMode::kMembership) ||
      count != keys.size() || reader.remaining() != count) {
    return Status::Internal("malformed QUERY response");
  }
  results->resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint8_t bit = 0;
    reader.GetU8(&bit);
    (*results)[i] = bit;
  }
  return Status::Ok();
}

Status ShbfClient::QueryCount(std::string_view filter,
                              const std::vector<std::string>& keys,
                              std::vector<uint64_t>* counts) {
  std::string body;
  std::string_view payload;
  Status s = RoundTrip(wire::BuildQuery(filter, wire::QueryMode::kCount, keys),
                       &body, &payload);
  if (!s.ok()) return s;
  ByteReader reader(payload);
  uint8_t mode = 0;
  uint64_t count = 0;
  if (!reader.GetU8(&mode) || !reader.GetU64(&count) ||
      mode != static_cast<uint8_t>(wire::QueryMode::kCount) ||
      count != keys.size() || reader.remaining() != count * 8) {
    return Status::Internal("malformed COUNT response");
  }
  counts->resize(count);
  for (uint64_t i = 0; i < count; ++i) reader.GetU64(&(*counts)[i]);
  return Status::Ok();
}

Status ShbfClient::Add(std::string_view filter,
                       const std::vector<std::string>& keys, uint64_t* added) {
  std::string body;
  std::string_view payload;
  Status s = RoundTrip(wire::BuildKeysRequest(wire::Opcode::kAdd, filter, keys),
                       &body, &payload);
  if (!s.ok()) return s;
  ByteReader reader(payload);
  uint64_t count = 0;
  if (!reader.GetU64(&count) || !reader.AtEnd()) {
    return Status::Internal("malformed ADD response");
  }
  if (added != nullptr) *added = count;
  return Status::Ok();
}

Status ShbfClient::Remove(std::string_view filter,
                          const std::vector<std::string>& keys,
                          std::vector<uint8_t>* removed) {
  std::string body;
  std::string_view payload;
  Status s = RoundTrip(
      wire::BuildKeysRequest(wire::Opcode::kRemove, filter, keys), &body,
      &payload);
  if (!s.ok()) return s;
  ByteReader reader(payload);
  uint64_t count = 0;
  if (!reader.GetU64(&count) || count != keys.size() ||
      reader.remaining() != count) {
    return Status::Internal("malformed REMOVE response");
  }
  if (removed != nullptr) {
    removed->resize(count);
    for (uint64_t i = 0; i < count; ++i) reader.GetU8(&(*removed)[i]);
  }
  return Status::Ok();
}

Status ShbfClient::ReadStatsPayload(ByteReader* reader, bool with_serve_name,
                                    FilterInfo* info) {
  if (with_serve_name &&
      !wire::ReadString(reader, wire::kMaxNameBytes, &info->serve_name)) {
    return Status::Internal("malformed stats record");
  }
  if (!wire::ReadString(reader, wire::kMaxNameBytes, &info->registry_name) ||
      !reader->GetU64(&info->elements) ||
      !reader->GetU64(&info->memory_bytes) ||
      !reader->GetU32(&info->capabilities)) {
    return Status::Internal("malformed stats record");
  }
  return Status::Ok();
}

Status ShbfClient::Stats(std::string_view filter, FilterInfo* info) {
  std::string body;
  std::string_view payload;
  Status s = RoundTrip(wire::BuildNameRequest(wire::Opcode::kStats, filter),
                       &body, &payload);
  if (!s.ok()) return s;
  ByteReader reader(payload);
  info->serve_name.assign(filter.data(), filter.size());
  s = ReadStatsPayload(&reader, /*with_serve_name=*/false, info);
  if (s.ok() && !reader.AtEnd()) {
    return Status::Internal("malformed STATS response");
  }
  return s;
}

Status ShbfClient::List(std::vector<FilterInfo>* filters) {
  std::string body;
  std::string_view payload;
  Status s = RoundTrip(wire::BuildList(), &body, &payload);
  if (!s.ok()) return s;
  ByteReader reader(payload);
  uint32_t count = 0;
  if (!reader.GetU32(&count)) return Status::Internal("malformed LIST");
  filters->clear();
  for (uint32_t i = 0; i < count; ++i) {
    FilterInfo info;
    s = ReadStatsPayload(&reader, /*with_serve_name=*/true, &info);
    if (!s.ok()) return s;
    filters->push_back(std::move(info));
  }
  if (!reader.AtEnd()) return Status::Internal("malformed LIST");
  return Status::Ok();
}

Status ShbfClient::WhichSets(const std::vector<std::string>& keys,
                             std::vector<std::vector<uint32_t>>* results) {
  std::string body;
  std::string_view payload;
  Status s = RoundTrip(wire::BuildWhichSets(keys), &body, &payload);
  if (!s.ok()) return s;
  ByteReader reader(payload);
  uint64_t count = 0;
  if (!reader.GetU64(&count) || count != keys.size()) {
    return Status::Internal("malformed WHICH_SETS response");
  }
  results->clear();
  results->resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t ids = 0;
    if (!reader.GetU32(&ids) || ids > reader.remaining() / 4) {
      return Status::Internal("malformed WHICH_SETS response");
    }
    (*results)[i].resize(ids);
    for (uint32_t j = 0; j < ids; ++j) reader.GetU32(&(*results)[i][j]);
  }
  if (!reader.AtEnd()) return Status::Internal("malformed WHICH_SETS response");
  return Status::Ok();
}

Status ShbfClient::IndexAdd(std::string_view set,
                            const std::vector<std::string>& keys,
                            uint64_t* added) {
  std::string body;
  std::string_view payload;
  Status s = RoundTrip(
      wire::BuildKeysRequest(wire::Opcode::kIndexAdd, set, keys), &body,
      &payload);
  if (!s.ok()) return s;
  ByteReader reader(payload);
  uint64_t count = 0;
  if (!reader.GetU64(&count) || !reader.AtEnd()) {
    return Status::Internal("malformed INDEX_ADD response");
  }
  if (added != nullptr) *added = count;
  return Status::Ok();
}

Status ShbfClient::IndexDrop(std::string_view set, uint64_t* remaining) {
  std::string body;
  std::string_view payload;
  Status s = RoundTrip(wire::BuildNameRequest(wire::Opcode::kIndexDrop, set),
                       &body, &payload);
  if (!s.ok()) return s;
  ByteReader reader(payload);
  uint64_t count = 0;
  if (!reader.GetU64(&count) || !reader.AtEnd()) {
    return Status::Internal("malformed INDEX_DROP response");
  }
  if (remaining != nullptr) *remaining = count;
  return Status::Ok();
}

Status ShbfClient::MultisetList(MultisetInfo* info) {
  std::string body;
  std::string_view payload;
  Status s = RoundTrip(wire::BuildEmptyRequest(wire::Opcode::kMultisetList),
                       &body, &payload);
  if (!s.ok()) return s;
  ByteReader reader(payload);
  uint32_t count = 0;
  MultisetInfo parsed;
  if (!reader.GetU32(&count) || !reader.GetU32(&parsed.trees) ||
      !reader.GetU32(&parsed.scan_leaves) || !reader.GetU32(&parsed.levels) ||
      !reader.GetU64(&parsed.summary_memory_bytes)) {
    return Status::Internal("malformed MULTISET_LIST response");
  }
  for (uint32_t i = 0; i < count; ++i) {
    MultisetInfo::Set set;
    if (!reader.GetU32(&set.id) ||
        !wire::ReadString(&reader, wire::kMaxNameBytes, &set.name) ||
        !wire::ReadString(&reader, wire::kMaxNameBytes, &set.registry_name) ||
        !reader.GetU64(&set.elements)) {
      return Status::Internal("malformed MULTISET_LIST response");
    }
    parsed.sets.push_back(std::move(set));
  }
  if (!reader.AtEnd()) {
    return Status::Internal("malformed MULTISET_LIST response");
  }
  *info = std::move(parsed);
  return Status::Ok();
}

Status ShbfClient::Metrics(ServerMetrics* metrics) {
  std::string body;
  std::string_view payload;
  Status s = RoundTrip(wire::BuildMetrics(), &body, &payload);
  if (!s.ok()) return s;
  ByteReader reader(payload);
  ServerMetrics parsed;
  uint32_t counters = 0;
  if (!reader.GetU64(&parsed.uptime_seconds) ||
      !wire::ReadString(&reader, wire::kMaxNameBytes, &parsed.version) ||
      !wire::ReadString(&reader, wire::kMaxNameBytes, &parsed.dispatch) ||
      !reader.GetU32(&counters)) {
    return Status::Internal("malformed METRICS response");
  }
  parsed.snapshot.uptime_seconds = parsed.uptime_seconds;
  parsed.snapshot.version = parsed.version;
  parsed.snapshot.dispatch = parsed.dispatch;
  for (uint32_t i = 0; i < counters; ++i) {
    std::string name;
    uint64_t value = 0;
    if (!wire::ReadString(&reader, wire::kMaxNameBytes, &name) ||
        !reader.GetU64(&value)) {
      return Status::Internal("malformed METRICS counter record");
    }
    parsed.snapshot.counters.emplace_back(std::move(name), value);
  }
  uint32_t gauges = 0;
  if (!reader.GetU32(&gauges)) {
    return Status::Internal("malformed METRICS response");
  }
  for (uint32_t i = 0; i < gauges; ++i) {
    std::string name;
    uint64_t value = 0;
    if (!wire::ReadString(&reader, wire::kMaxNameBytes, &name) ||
        !reader.GetU64(&value)) {
      return Status::Internal("malformed METRICS gauge record");
    }
    parsed.snapshot.gauges.emplace_back(std::move(name),
                                        static_cast<int64_t>(value));
  }
  uint32_t histograms = 0;
  if (!reader.GetU32(&histograms)) {
    return Status::Internal("malformed METRICS response");
  }
  for (uint32_t i = 0; i < histograms; ++i) {
    obs::HistogramSnapshot h;
    uint32_t buckets = 0;
    if (!wire::ReadString(&reader, wire::kMaxNameBytes, &h.name) ||
        !reader.GetU64(&h.count) || !reader.GetU64(&h.sum) ||
        !reader.GetU32(&buckets) || buckets > reader.remaining() / 8) {
      return Status::Internal("malformed METRICS histogram record");
    }
    // A newer server may speak a wider bucket array: fold the overflow
    // into the last bucket rather than fail (the scheme is additive).
    for (uint32_t b = 0; b < buckets; ++b) {
      uint64_t bucket = 0;
      reader.GetU64(&bucket);
      const size_t index = b < obs::kNumBuckets ? b : obs::kNumBuckets - 1;
      h.buckets[index] += bucket;
    }
    parsed.snapshot.histograms.push_back(std::move(h));
  }
  if (!reader.AtEnd()) return Status::Internal("malformed METRICS response");
  *metrics = std::move(parsed);
  return Status::Ok();
}

Status ShbfClient::Snapshot(std::string_view filter, std::string_view path,
                            uint64_t* bytes_written, std::string* path_used) {
  std::string body;
  std::string_view payload;
  Status s = RoundTrip(
      wire::BuildPathRequest(wire::Opcode::kSnapshot, filter, path), &body,
      &payload);
  if (!s.ok()) return s;
  ByteReader reader(payload);
  uint64_t bytes = 0;
  std::string used;
  if (!reader.GetU64(&bytes) ||
      !wire::ReadString(&reader, wire::kMaxPathBytes, &used) ||
      !reader.AtEnd()) {
    return Status::Internal("malformed SNAPSHOT response");
  }
  if (bytes_written != nullptr) *bytes_written = bytes;
  if (path_used != nullptr) *path_used = std::move(used);
  return Status::Ok();
}

Status ShbfClient::Reload(std::string_view filter, std::string_view path,
                          uint64_t* elements) {
  std::string body;
  std::string_view payload;
  Status s =
      RoundTrip(wire::BuildPathRequest(wire::Opcode::kReload, filter, path),
                &body, &payload);
  if (!s.ok()) return s;
  ByteReader reader(payload);
  uint64_t count = 0;
  if (!reader.GetU64(&count) || !reader.AtEnd()) {
    return Status::Internal("malformed RELOAD response");
  }
  if (elements != nullptr) *elements = count;
  return Status::Ok();
}

}  // namespace shbf
