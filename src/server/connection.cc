#include "server/connection.h"

#include <cstdint>

namespace shbf {
namespace server {

void FrameSplitter::Feed(const char* data, size_t len) {
  // Compact before growing: consumed bytes at the front would otherwise
  // accumulate for the lifetime of a long connection.
  if (cursor_ > 0 && (cursor_ == buffer_.size() || cursor_ >= 64 * 1024)) {
    buffer_.erase(0, cursor_);
    cursor_ = 0;
  }
  buffer_.append(data, len);
}

FrameSplitter::Event FrameSplitter::Next(std::string_view* frame) {
  const size_t available = buffer_.size() - cursor_;
  if (available < 4) return Event::kNeedMore;
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(
                  static_cast<uint8_t>(buffer_[cursor_ + i]))
              << (8 * i);
  }
  // Violations consume nothing: the caller answers and stops reading, so
  // the poisoned bytes are simply never looked at again.
  if (length == 0) return Event::kEmpty;
  if (length > max_frame_bytes_) return Event::kTooLarge;
  if (available < 4 + static_cast<size_t>(length)) return Event::kNeedMore;
  *frame = std::string_view(buffer_).substr(cursor_ + 4, length);
  cursor_ += 4 + static_cast<size_t>(length);
  return Event::kFrame;
}

void Connection::AppendOutput(std::string_view bytes) {
  if (out_cursor > 0 &&
      (out_cursor == outbuf.size() || out_cursor >= 256 * 1024)) {
    outbuf.erase(0, out_cursor);
    out_cursor = 0;
  }
  outbuf.append(bytes.data(), bytes.size());
}

}  // namespace server
}  // namespace shbf
