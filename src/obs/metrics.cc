#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace shbf {
namespace obs {

namespace {

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}

/// Metric names reach Prometheus as [a-zA-Z0-9_:]*; everything else (the
/// dots in our catalog, mostly) flattens to '_'.
std::string PrometheusName(std::string_view name) {
  std::string out = "shbf_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// JSON string escaping for metric names (conservative: names are ASCII
/// identifiers, but the format must not break if one is not).
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min<size_t>(n, sizeof(buf) - 1));
}

}  // namespace

bool Enabled() {
  if constexpr (!kCompiledIn) return false;
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

namespace internal {

size_t CellIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kCells;
  return index;
}

}  // namespace internal

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank target (1-based), then walk the buckets.
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(q * count + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t before = seen;
    seen += buckets[i];
    if (seen < target) continue;
    // Interpolate inside bucket i: (lower, upper] with bucket 0 = [0, 1].
    const double upper = static_cast<double>(BucketUpperBound(i));
    const double lower = i == 0 ? 0.0 : static_cast<double>(uint64_t{1} << (i - 1));
    const double within =
        static_cast<double>(target - before) / static_cast<double>(buckets[i]);
    return lower + (upper - lower) * within;
  }
  return static_cast<double>(BucketUpperBound(kNumBuckets - 1));
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (const Cell& cell : cells_) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      const uint64_t n = cell.buckets[i].load(std::memory_order_relaxed);
      snap.buckets[i] += n;
      snap.count += n;
    }
    snap.sum += cell.sum.load(std::memory_order_relaxed);
  }
  return snap;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name,
                                       uint64_t fallback) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return fallback;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

void MetricsSnapshot::SortByName() {
  std::sort(counters.begin(), counters.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(gauges.begin(), gauges.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(histograms.begin(), histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n";
  AppendF(&out, "  \"uptime_seconds\": %" PRIu64 ",\n", uptime_seconds);
  out += "  \"version\": \"" + JsonEscape(version) + "\",\n";
  out += "  \"dispatch\": \"" + JsonEscape(dispatch) + "\",\n";
  out += "  \"counters\": {\n";
  for (size_t i = 0; i < counters.size(); ++i) {
    AppendF(&out, "    \"%s\": %" PRIu64 "%s\n",
            JsonEscape(counters[i].first).c_str(), counters[i].second,
            i + 1 < counters.size() ? "," : "");
  }
  out += "  },\n  \"gauges\": {\n";
  for (size_t i = 0; i < gauges.size(); ++i) {
    AppendF(&out, "    \"%s\": %" PRId64 "%s\n",
            JsonEscape(gauges[i].first).c_str(), gauges[i].second,
            i + 1 < gauges.size() ? "," : "");
  }
  out += "  },\n  \"histograms\": {\n";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    out += "    \"" + JsonEscape(h.name) + "\": {";
    AppendF(&out, "\"count\": %" PRIu64 ", \"sum\": %" PRIu64, h.count, h.sum);
    AppendF(&out, ", \"p50\": %.1f, \"p90\": %.1f, \"p99\": %.1f, \"p999\": %.1f",
            h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99),
            h.Quantile(0.999));
    // Sparse bucket map: "le" upper bound -> count, zero buckets omitted.
    out += ", \"buckets\": {";
    bool first = true;
    for (size_t b = 0; b < kNumBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      AppendF(&out, "%s\"%" PRIu64 "\": %" PRIu64, first ? "" : ", ",
              HistogramSnapshot::BucketUpperBound(b), h.buckets[b]);
      first = false;
    }
    out += "}}";
    out += i + 1 < histograms.size() ? ",\n" : "\n";
  }
  out += "  }\n}\n";
  return out;
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::string out;
  AppendF(&out, "# TYPE shbf_uptime_seconds gauge\nshbf_uptime_seconds %" PRIu64
                "\n",
          uptime_seconds);
  out += "# TYPE shbf_build_info gauge\nshbf_build_info{version=\"" + version +
         "\",dispatch=\"" + dispatch + "\"} 1\n";
  for (const auto& [name, value] : counters) {
    const std::string p = PrometheusName(name);
    AppendF(&out, "# TYPE %s counter\n%s %" PRIu64 "\n", p.c_str(), p.c_str(),
            value);
  }
  for (const auto& [name, value] : gauges) {
    const std::string p = PrometheusName(name);
    AppendF(&out, "# TYPE %s gauge\n%s %" PRId64 "\n", p.c_str(), p.c_str(),
            value);
  }
  for (const HistogramSnapshot& h : histograms) {
    const std::string p = PrometheusName(h.name);
    AppendF(&out, "# TYPE %s histogram\n", p.c_str());
    // Cumulative buckets up to the last nonzero one, then +Inf.
    size_t last = 0;
    for (size_t b = 0; b < kNumBuckets; ++b) {
      if (h.buckets[b] != 0) last = b;
    }
    uint64_t cumulative = 0;
    for (size_t b = 0; b <= last; ++b) {
      cumulative += h.buckets[b];
      AppendF(&out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n", p.c_str(),
              HistogramSnapshot::BucketUpperBound(b), cumulative);
    }
    AppendF(&out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", p.c_str(), h.count);
    AppendF(&out, "%s_sum %" PRIu64 "\n", p.c_str(), h.sum);
    AppendF(&out, "%s_count %" PRIu64 "\n", p.c_str(), h.count);
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h = histogram->Snapshot();
    h.name = name;
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

}  // namespace obs
}  // namespace shbf
