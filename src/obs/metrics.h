// Runtime metrics for the serving stack: named counters, gauges, and
// log2-bucketed latency histograms behind a process-global registry.
//
// Design constraints (ISSUE 10):
//  * The hot path must cost one relaxed atomic increment and contend with
//    nothing. Counters and histograms are sharded across cache-line-padded
//    cells; a thread picks its cell once (thread-local) and never shares a
//    line with another writer. Readers merge the cells on demand — reads
//    are rare (METRICS frames, dump thread), writes are per-key-batch.
//  * Instrumentation must be provably removable. Two layers:
//      - runtime: obs::SetEnabled(false) turns every increment AND every
//        call-site clock read into a single relaxed bool load
//        (`serve_throughput --compare-metrics` gates this path within 3%
//        of compiled-out);
//      - compile time: -DSHBF_NO_METRICS (CMake: -DSHBF_DISABLE_METRICS=ON)
//        makes kCompiledIn a constant false, so the bodies below fold to
//        nothing and Enabled() short-circuits callers' timing code.
//  * Histograms use fixed power-of-two buckets (bucket i counts values in
//    (2^(i-1), 2^i], bucket 0 counts 0 and 1), so recording is a shift and
//    an increment — no comparisons, no configuration, and any two
//    snapshots merge bucket-for-bucket. Quantiles (p50/p90/p99/p99.9)
//    interpolate inside the hit bucket; with ~2x-wide buckets the estimate
//    is within 2x of truth, which is what a latency dashboard needs.
//
// Naming convention: "<layer>.<what>[_<unit>][_total]" — e.g.
// "server.handle_us.query", "engine.fastpath_batches_total". The full
// catalog lives in docs/observability.md.

#ifndef SHBF_OBS_METRICS_H_
#define SHBF_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace shbf {
namespace obs {

/// False when the instrumentation was compiled out (-DSHBF_NO_METRICS).
#ifdef SHBF_NO_METRICS
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/// Runtime kill switch (default on). Callers MUST consult Enabled() before
/// doing work that only feeds metrics (clock reads, size sums); the
/// primitives below also check it, so a disabled registry records nothing.
bool Enabled();
void SetEnabled(bool enabled);

/// Writer cells per metric. Enough that 8 worker threads rarely collide;
/// small enough that a histogram stays a few KiB.
inline constexpr size_t kCells = 16;

/// Histogram bucket count. Bucket 39 holds values > 2^38 (~4.6 minutes in
/// microseconds) — effectively +Inf for request latencies.
inline constexpr size_t kNumBuckets = 40;

namespace internal {

/// The cell this thread writes to. Threads are striped round-robin, so a
/// fixed worker pool spreads perfectly; short-lived threads reuse slots.
size_t CellIndex();

struct alignas(64) PaddedCounterCell {
  std::atomic<uint64_t> value{0};
};

}  // namespace internal

/// Monotonic counter. Increment is one relaxed fetch_add on a
/// thread-private cache line.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) {
    if constexpr (!kCompiledIn) {
      (void)delta;
      return;
    }
    if (!Enabled()) return;
    cells_[internal::CellIndex()].value.fetch_add(delta,
                                                  std::memory_order_relaxed);
  }

  /// Merged value. Relaxed loads: the result is a consistent-enough sum
  /// for monitoring, exact once writers quiesce (what the parity tests do).
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<internal::PaddedCounterCell, kCells> cells_;
};

/// Point-in-time value (queue depths, last-drain duration). Single cell:
/// gauges are set rarely, from one site.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) {
    if constexpr (!kCompiledIn) {
      (void)value;
      return;
    }
    if (!Enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }

  void Add(int64_t delta) {
    if constexpr (!kCompiledIn) {
      (void)delta;
      return;
    }
    if (!Enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Merged read-side view of one histogram. buckets[i] counts values in
/// (2^(i-1), 2^i]; buckets[0] counts 0 and 1; the last bucket absorbs
/// everything larger.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, kNumBuckets> buckets{};

  /// Upper bound of bucket i (inclusive), i.e. the Prometheus `le`.
  static uint64_t BucketUpperBound(size_t i) { return uint64_t{1} << i; }

  /// Quantile estimate, q in [0, 1]: nearest-rank to the hit bucket, then
  /// linear interpolation between the bucket's bounds. Returns 0 when
  /// empty.
  double Quantile(double q) const;
};

/// Log2-bucketed histogram. Record() is: find bucket (a bit-scan), two
/// relaxed fetch_adds (bucket + sum) on a thread-private cell.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  static size_t BucketIndex(uint64_t value) {
    if (value <= 1) return 0;
    // Smallest i with value <= 2^i  ==  bit_width(value - 1).
    const size_t width =
        64 - static_cast<size_t>(__builtin_clzll(value - 1));
    return width < kNumBuckets ? width : kNumBuckets - 1;
  }

  void Record(uint64_t value) {
    if constexpr (!kCompiledIn) {
      (void)value;
      return;
    }
    if (!Enabled()) return;
    Cell& cell = cells_[internal::CellIndex()];
    cell.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    cell.sum.fetch_add(value, std::memory_order_relaxed);
  }

  /// Merges every cell into one snapshot (name left empty — the registry
  /// fills it).
  HistogramSnapshot Snapshot() const;

 private:
  struct alignas(64) Cell {
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
  };
  std::array<Cell, kCells> cells_;
};

/// Full registry snapshot — what a METRICS frame, a --metrics-dump file,
/// and `shbf_cli remote metrics` all carry. Entries are sorted by name.
struct MetricsSnapshot {
  uint64_t uptime_seconds = 0;
  std::string version;   ///< kShbfVersion of the producing binary
  std::string dispatch;  ///< active SIMD level (simd::LevelName)
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Counter lookup; `fallback` when absent.
  uint64_t CounterValue(std::string_view name, uint64_t fallback = 0) const;

  /// Histogram lookup; nullptr when absent.
  const HistogramSnapshot* FindHistogram(std::string_view name) const;

  /// Re-sorts counters/gauges/histograms by name (after manual inserts).
  void SortByName();

  /// Pretty-printed JSON object (histograms as {count, sum, p50..p999,
  /// buckets}); schema documented in docs/observability.md.
  std::string ToJson() const;

  /// Prometheus text exposition format, names prefixed "shbf_" with dots
  /// flattened to underscores; histograms as cumulative _bucket{le=...}.
  std::string ToPrometheus() const;
};

/// Name → metric map. Get* registers on first use and returns a pointer
/// that stays valid for the registry's lifetime — call sites resolve once
/// (member / static local) and increment lock-free forever after.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrumentation site uses.
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Merged view of everything registered (uptime/version/dispatch left
  /// for the caller — the server stamps them).
  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace obs
}  // namespace shbf

#endif  // SHBF_OBS_METRICS_H_
