#include "obs/trace_ring.h"

#include <cinttypes>

namespace shbf {
namespace obs {

RequestTraceRing::RequestTraceRing(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void RequestTraceRing::Record(RequestTrace trace) {
  bool slow = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    trace.seq = next_seq_++;
    if (ring_.size() < capacity_) {
      ring_.push_back(trace);
    } else {
      ring_[trace.seq % capacity_] = trace;
    }
    if (slow_threshold_us_ != 0 && trace.handle_us >= slow_threshold_us_) {
      ++slow_count_;
      slow = true;
    }
  }
  if (slow && slow_sink_ != nullptr) {
    // Outside the lock: stderr writes must not serialize the workers.
    std::fprintf(slow_sink_,
                 "[shbf slow] seq=%" PRIu64 " conn=%" PRIu64
                 " op=%s keys=%" PRIu32 " queue_us=%" PRIu64
                 " handle_us=%" PRIu64 " bytes_in=%" PRIu64
                 " bytes_out=%" PRIu64 "\n",
                 trace.seq, trace.connection_id,
                 trace.opcode_name != nullptr ? trace.opcode_name : "?",
                 trace.key_count, trace.queue_wait_us, trace.handle_us,
                 trace.bytes_in, trace.bytes_out);
  }
}

std::vector<RequestTrace> RequestTraceRing::Recent(size_t max) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t held = ring_.size();
  const size_t want = (max == 0 || max > held) ? held : max;
  std::vector<RequestTrace> out;
  out.reserve(want);
  // Oldest surviving seq is next_seq_ - held; emit the last `want`.
  for (uint64_t seq = next_seq_ - want; seq < next_seq_; ++seq) {
    out.push_back(ring_[seq % capacity_]);
  }
  return out;
}

uint64_t RequestTraceRing::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

uint64_t RequestTraceRing::slow_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_count_;
}

}  // namespace obs
}  // namespace shbf
