// Request-trace ring + slow-request log.
//
// Every answered frame leaves one fixed-size RequestTrace record in a
// bounded ring (newest overwrite oldest), so an operator inspecting a
// misbehaving server sees the last ~1024 requests with their opcode, key
// count, queue wait and handle time — without any log volume in steady
// state. Frames whose handle time crosses the slow threshold additionally
// emit one human-readable stderr line at record time:
//
//   [shbf slow] seq=812 conn=3 op=QUERY keys=8192 queue_us=1832
//               handle_us=15021 bytes_in=91430 bytes_out=1029
//
// Record() takes a mutex: the per-frame cost (~20ns uncontended) is noise
// next to the syscalls that bracket every frame, and it keeps the ring
// trivially TSan-clean. The serving hot path only calls Record() when
// obs::Enabled() — the --compare-metrics gate covers this path too.

#ifndef SHBF_OBS_TRACE_RING_H_
#define SHBF_OBS_TRACE_RING_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <vector>

namespace shbf {
namespace obs {

/// One answered frame. `opcode_name` points at a static string (the wire
/// layer's opcode table) or nullptr for unparseable frames.
struct RequestTrace {
  uint64_t seq = 0;  ///< assigned by Record(), monotonic per ring
  uint64_t connection_id = 0;
  uint8_t opcode = 0;
  const char* opcode_name = nullptr;
  uint32_t key_count = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t queue_wait_us = 0;
  uint64_t handle_us = 0;
};

class RequestTraceRing {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  explicit RequestTraceRing(size_t capacity = kDefaultCapacity);
  RequestTraceRing(const RequestTraceRing&) = delete;
  RequestTraceRing& operator=(const RequestTraceRing&) = delete;

  /// Slow threshold in microseconds (on handle time). 0 disables the slow
  /// log (the ring still records).
  void set_slow_threshold_us(uint64_t us) { slow_threshold_us_ = us; }
  uint64_t slow_threshold_us() const { return slow_threshold_us_; }

  /// Destination of slow-log lines (default stderr; tests redirect).
  void set_slow_sink(FILE* sink) { slow_sink_ = sink; }

  /// Stamps trace.seq and stores it; emits the slow-log line when the
  /// threshold is set and crossed.
  void Record(RequestTrace trace);

  /// The most recent traces, oldest first, at most `max` (0 = all held).
  std::vector<RequestTrace> Recent(size_t max = 0) const;

  uint64_t recorded() const;    ///< total Record() calls
  uint64_t slow_count() const;  ///< traces that crossed the threshold

 private:
  const size_t capacity_;
  uint64_t slow_threshold_us_ = 0;
  FILE* slow_sink_ = stderr;

  mutable std::mutex mu_;
  std::vector<RequestTrace> ring_;  ///< ring_[seq % capacity_]
  uint64_t next_seq_ = 0;
  uint64_t slow_count_ = 0;
};

}  // namespace obs
}  // namespace shbf

#endif  // SHBF_OBS_TRACE_RING_H_
