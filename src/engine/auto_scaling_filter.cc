#include "engine/auto_scaling_filter.h"

#include <utility>

#include "api/filter_registry.h"
#include "core/check.h"
#include "core/serde.h"

namespace shbf {
namespace {

/// Golden-ratio seed salt: generation g hashes with seed ^ (g · salt), so
/// a collision in one generation is independent in the next.
constexpr uint64_t kGenerationSeedSalt = 0x9e3779b97f4a7c15ull;

}  // namespace

AutoScalingFilter::AutoScalingFilter(std::string base_name,
                                     const FilterSpec& base_spec,
                                     const FilterRegistry& registry,
                                     size_t gen_capacity)
    : name_(std::string(kNamePrefix) + base_name),
      base_name_(std::move(base_name)),
      base_spec_(base_spec),
      registry_(&registry),
      gen_capacity_(gen_capacity < 1 ? 1 : gen_capacity) {
  SHBF_CHECK(base_spec_.delta_capacity == 0 && !base_spec_.auto_scale &&
             base_spec_.shards == 1)
      << "AutoScalingFilter: base spec must be sanitized";
}

Status AutoScalingFilter::Create(const std::string& base_name,
                                 const FilterSpec& base_spec,
                                 const FilterRegistry& registry,
                                 size_t gen_capacity,
                                 std::unique_ptr<AutoScalingFilter>* out) {
  std::unique_ptr<AutoScalingFilter> filter(new AutoScalingFilter(
      base_name, base_spec, registry, gen_capacity));
  Status s = filter->OpenGeneration();
  if (!s.ok()) return s;
  filter->base_caps_ = filter->generations_[0].filter->capabilities();
  filter->base_incremental_ =
      filter->generations_[0].filter->IncrementalAdd();
  *out = std::move(filter);
  return Status::Ok();
}

FilterSpec AutoScalingFilter::GenerationSpec(size_t g) const {
  FilterSpec spec = base_spec_;
  spec.num_cells = base_spec_.num_cells << g;
  spec.expected_keys = (base_spec_.expected_keys > 0
                            ? base_spec_.expected_keys
                            : gen_capacity_)
                       << g;
  spec.seed = base_spec_.seed ^ (static_cast<uint64_t>(g) *
                                 kGenerationSeedSalt);
  return spec;
}

Status AutoScalingFilter::OpenGeneration() {
  const size_t g = generations_.size();
  Generation generation;
  Status s = registry_->Create(base_name_, GenerationSpec(g),
                               &generation.filter);
  if (!s.ok()) return s;
  generations_.push_back(std::move(generation));
  return Status::Ok();
}

void AutoScalingFilter::Add(std::string_view key) {
  Generation* newest = &generations_.back();
  if (newest->adds >= generation_capacity(generations_.size() - 1)) {
    // A failed open (unreachable for registered bases: the doubled spec
    // stays valid) degrades to overfilling the sealed generation rather
    // than dropping the key — FPR drift, never a false negative.
    if (OpenGeneration().ok()) newest = &generations_.back();
  }
  newest->filter->Add(key);
  ++newest->adds;
}

bool AutoScalingFilter::Contains(std::string_view key) const {
  for (size_t g = generations_.size(); g-- > 0;) {
    if (generations_[g].filter->Contains(key)) return true;
  }
  return false;
}

void AutoScalingFilter::ContainsBatch(const std::vector<std::string>& keys,
                                      std::vector<uint8_t>* results) const {
  generations_.back().filter->ContainsBatch(keys, results);
  std::vector<uint8_t> partial;
  for (size_t g = generations_.size() - 1; g-- > 0;) {
    generations_[g].filter->ContainsBatch(keys, &partial);
    for (size_t i = 0; i < keys.size(); ++i) {
      (*results)[i] |= partial[i];
    }
  }
}

Status AutoScalingFilter::Remove(std::string_view key) {
  if ((base_caps_ & kRemove) == 0) {
    return Status::FailedPrecondition(
        name_ + ": base filter \"" + base_name_ +
        "\" does not support Remove");
  }
  for (size_t g = generations_.size(); g-- > 0;) {
    if (!generations_[g].filter->Contains(key)) continue;
    Status s = generations_[g].filter->Remove(key);
    if (s.code() == Status::Code::kNotFound) continue;  // false positive
    if (s.ok() && generations_[g].adds > 0) --generations_[g].adds;
    return s;
  }
  return Status::NotFound(name_ + ": Remove of an absent key");
}

size_t AutoScalingFilter::num_elements() const {
  size_t total = 0;
  for (const auto& generation : generations_) {
    total += generation.filter->num_elements();
  }
  return total;
}

size_t AutoScalingFilter::memory_bytes() const {
  size_t total = 0;
  for (const auto& generation : generations_) {
    total += generation.filter->memory_bytes();
  }
  return total;
}

void AutoScalingFilter::Clear() {
  generations_.resize(1);
  generations_[0].filter->Clear();
  generations_[0].adds = 0;
}

std::string AutoScalingFilter::ToBytes() const {
  ByteWriter writer;
  writer.PutU32(static_cast<uint32_t>(base_name_.size()));
  writer.PutBytes(base_name_.data(), base_name_.size());
  spec_serde::WriteSpec(&writer, base_spec_);
  writer.PutU64(gen_capacity_);
  writer.PutU32(static_cast<uint32_t>(generations_.size()));
  for (const auto& generation : generations_) {
    writer.PutU64(generation.adds);
    std::string blob = FilterRegistry::Serialize(*generation.filter);
    writer.PutU64(blob.size());
    writer.PutBytes(blob.data(), blob.size());
  }
  return writer.Take();
}

Status AutoScalingFilter::Deserialize(std::string_view envelope_name,
                                      std::string_view payload,
                                      const FilterRegistry& registry,
                                      std::unique_ptr<MembershipFilter>* out) {
  if (envelope_name.substr(0, kNamePrefix.size()) != kNamePrefix) {
    return Status::InvalidArgument("scaling: envelope name lacks prefix");
  }
  const std::string base_name(envelope_name.substr(kNamePrefix.size()));
  ByteReader reader(payload);
  uint32_t name_length = 0;
  if (!reader.GetU32(&name_length) || name_length != base_name.size()) {
    return Status::InvalidArgument("scaling: bad payload framing");
  }
  std::string stored_name(name_length, '\0');
  if (!reader.GetBytes(stored_name.data(), name_length) ||
      stored_name != base_name) {
    return Status::InvalidArgument(
        "scaling: payload names \"" + stored_name + "\", envelope says \"" +
        base_name + "\"");
  }
  FilterSpec spec;
  uint64_t gen_capacity = 0;
  uint32_t num_generations = 0;
  if (!spec_serde::ReadSpec(&reader, &spec) ||
      !reader.GetU64(&gen_capacity) || !reader.GetU32(&num_generations) ||
      num_generations == 0 || num_generations > reader.remaining()) {
    return Status::InvalidArgument("scaling: bad payload framing");
  }
  if (spec.delta_capacity != 0 || spec.auto_scale || spec.shards != 1) {
    return Status::InvalidArgument("scaling: nested spec is not sanitized");
  }
  std::unique_ptr<AutoScalingFilter> filter(
      new AutoScalingFilter(base_name, spec, registry, gen_capacity));
  for (uint32_t g = 0; g < num_generations; ++g) {
    uint64_t adds = 0;
    uint64_t blob_size = 0;
    if (!reader.GetU64(&adds) || !reader.GetU64(&blob_size) ||
        blob_size > reader.remaining()) {
      return Status::InvalidArgument("scaling: truncated generation blob");
    }
    std::string blob(blob_size, '\0');
    if (!reader.GetBytes(blob.data(), blob_size)) {
      return Status::InvalidArgument("scaling: truncated generation blob");
    }
    Generation generation;
    Status s = registry.Deserialize(blob, &generation.filter);
    if (!s.ok()) return s;
    if (generation.filter->name() != base_name) {
      return Status::InvalidArgument(
          "scaling: generation blob names \"" +
          std::string(generation.filter->name()) + "\", envelope says \"" +
          base_name + "\"");
    }
    generation.adds = adds;
    filter->generations_.push_back(std::move(generation));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("scaling: trailing bytes");
  }
  filter->base_caps_ = filter->generations_[0].filter->capabilities();
  filter->base_incremental_ =
      filter->generations_[0].filter->IncrementalAdd();
  *out = std::move(filter);
  return Status::Ok();
}

}  // namespace shbf
