#include "engine/sharded_filter.h"

#include <utility>

#include "api/filter_registry.h"
#include "core/serde.h"

namespace shbf {

ShardedMembershipFilter::ShardedMembershipFilter(
    std::string base_name, size_t batch_size,
    std::vector<std::unique_ptr<MembershipFilter>> shards)
    : name_(std::string(kNamePrefix) + base_name),
      batch_size_(batch_size < 1 ? 1 : batch_size),
      engine_(BatchOptions{.batch_size = batch_size_}),
      sharded_(shards.size(), [&shards](size_t i) {
        return std::move(shards[i]);
      }) {
  // Route each shard's sub-batch through the engine so the non-virtual
  // prefetching path engages per shard.
  sharded_.SetBatchFn([this](const MembershipFilter& filter,
                             const std::vector<std::string_view>& keys,
                             std::vector<uint8_t>* results) {
    engine_.ContainsBatch(filter, keys, results);
  });
  // The ensemble supports what every shard supports; kMergeable is masked
  // because merging sharded ensembles is not implemented at this level.
  capabilities_ = ~0u;
  sharded_.ForEachShard([this](size_t, const MembershipFilter& filter) {
    capabilities_ &= filter.capabilities();
  });
  capabilities_ &= static_cast<uint32_t>(~kMergeable);
}

size_t ShardedMembershipFilter::memory_bytes() const {
  size_t total = 0;
  sharded_.ForEachShard([&total](size_t, const MembershipFilter& filter) {
    total += filter.memory_bytes();
  });
  return total;
}

std::string ShardedMembershipFilter::ToBytes() const {
  // Payload: batch_size u32, shard count u32, then each shard's
  // self-describing registry envelope, length-prefixed.
  ByteWriter writer;
  writer.PutU32(static_cast<uint32_t>(batch_size_));
  writer.PutU32(static_cast<uint32_t>(sharded_.num_shards()));
  sharded_.ForEachShard([&writer](size_t, const MembershipFilter& filter) {
    std::string blob = FilterRegistry::Serialize(filter);
    writer.PutU64(blob.size());
    writer.PutBytes(blob.data(), blob.size());
  });
  return writer.Take();
}

Status ShardedMembershipFilter::Deserialize(
    std::string_view envelope_name, std::string_view payload,
    const FilterRegistry& registry, std::unique_ptr<MembershipFilter>* out) {
  if (envelope_name.substr(0, kNamePrefix.size()) != kNamePrefix) {
    return Status::InvalidArgument("sharded: envelope name lacks prefix");
  }
  const std::string base_name(envelope_name.substr(kNamePrefix.size()));
  ByteReader reader(payload);
  uint32_t batch_size = 0;
  uint32_t num_shards = 0;
  if (!reader.GetU32(&batch_size) || !reader.GetU32(&num_shards) ||
      num_shards == 0 || num_shards > reader.remaining()) {
    return Status::InvalidArgument("sharded: bad payload framing");
  }
  std::vector<std::unique_ptr<MembershipFilter>> shards;
  shards.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    uint64_t blob_size = 0;
    if (!reader.GetU64(&blob_size) || blob_size > reader.remaining()) {
      return Status::InvalidArgument("sharded: truncated shard blob");
    }
    std::string blob(blob_size, '\0');
    if (!reader.GetBytes(blob.data(), blob_size)) {
      return Status::InvalidArgument("sharded: truncated shard blob");
    }
    std::unique_ptr<MembershipFilter> shard;
    Status st = registry.Deserialize(blob, &shard);
    if (!st.ok()) return st;
    if (shard->name() != base_name) {
      return Status::InvalidArgument(
          "sharded: shard blob names \"" + std::string(shard->name()) +
          "\", envelope says \"" + base_name + "\"");
    }
    shards.push_back(std::move(shard));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("sharded: trailing bytes");
  }
  *out = std::make_unique<ShardedMembershipFilter>(base_name, batch_size,
                                                   std::move(shards));
  return Status::Ok();
}

}  // namespace shbf
