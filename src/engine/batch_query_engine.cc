#include "engine/batch_query_engine.h"

#include <algorithm>

#include "baselines/blocked_bloom_filter.h"
#include "baselines/bloom_filter.h"
#include "core/simd.h"
#include "shbf/blocked_shbf_membership.h"
#include "shbf/shbf_association.h"
#include "shbf/shbf_membership.h"

namespace shbf {
namespace {

// Runs the two-pass protocol over `keys` in groups of `group_size`:
// hash + prefetch the whole group, then resolve it, so every window pass 2
// reads is resident or in flight by the time it is loaded. `resolve(i, probe)`
// receives the key index and its prepared probe. `Keys` is any container of
// string-viewable elements (std::string or std::string_view).
template <typename Impl, typename Keys, typename Resolve>
void TwoPassLoop(const Impl& impl, const Keys& keys, size_t group_size,
                 Resolve&& resolve) {
  std::vector<typename Impl::Probe> probes(
      std::min(group_size, keys.size()));
  for (size_t start = 0; start < keys.size(); start += group_size) {
    const size_t group = std::min(group_size, keys.size() - start);
    for (size_t g = 0; g < group; ++g) {
      impl.PrepareProbe(keys[start + g], &probes[g]);
      impl.PrefetchProbe(probes[g]);
    }
    for (size_t g = 0; g < group; ++g) {
      resolve(start + g, probes[g]);
    }
  }
}

// The blocked ShBF_M resolve, vectorized across the group: pass 2 gathers
// every pair window of the group (now resident thanks to the prefetch pass)
// into one flat array, replicates each key's `need` pattern alongside, and
// hands the whole gather to simd::MaskTestMany — 4 windows = 8 probed bits
// per AVX2 op (NEON: 2 = 4) instead of one test-and-branch per window. The
// per-key verdict is the AND over its pair lanes.
template <typename Keys>
void BlockedShbfMGroupLoop(const BlockedShbfM& impl, const Keys& keys,
                           size_t group_size, std::vector<uint8_t>* results) {
  const uint32_t pairs = impl.num_pairs();
  const size_t cap = std::min(group_size, keys.size());
  std::vector<BlockedShbfM::Probe> probes(cap);
  std::vector<uint64_t> windows(cap * pairs);
  std::vector<uint64_t> needs(cap * pairs);
  std::vector<uint8_t> hits(cap * pairs);
  for (size_t start = 0; start < keys.size(); start += group_size) {
    const size_t group = std::min(group_size, keys.size() - start);
    for (size_t g = 0; g < group; ++g) {
      impl.PrepareProbe(keys[start + g], &probes[g]);
      impl.PrefetchProbe(probes[g]);
    }
    size_t n = 0;
    for (size_t g = 0; g < group; ++g) {
      for (uint32_t p = 0; p < pairs; ++p, ++n) {
        windows[n] = impl.bits().LoadWindow(probes[g].bases[p]);
        needs[n] = probes[g].need;
      }
    }
    simd::MaskTestMany(windows.data(), needs.data(), n, hits.data());
    n = 0;
    for (size_t g = 0; g < group; ++g) {
      uint8_t ok = 1;
      for (uint32_t p = 0; p < pairs; ++p, ++n) ok &= hits[n];
      (*results)[start + g] = ok;
    }
  }
}

// The probe protocol bounds k; a spec-built filter can exceed the bound, in
// which case the engine must decline the fast path rather than trip the
// implementation's CHECK.
bool FastPathSupported(BatchFastPath::Kind kind, const void* impl) {
  switch (kind) {
    case BatchFastPath::Kind::kShbfM:
      return static_cast<const ShbfM*>(impl)->num_hashes() / 2 <=
             ShbfM::kMaxBatchPairs;
    case BatchFastPath::Kind::kBloom:
      return static_cast<const BloomFilter*>(impl)->num_hashes() <=
             BloomFilter::kMaxBatchHashes;
    case BatchFastPath::Kind::kShbfX:
      return static_cast<const ShbfX*>(impl)->num_hashes() <=
             ShbfX::kMaxBatchHashes;
    case BatchFastPath::Kind::kShbfA:
      return static_cast<const ShbfA*>(impl)->num_hashes() <=
             ShbfA::kMaxBatchHashes;
    case BatchFastPath::Kind::kBlockedBloom:
      // FillMask bounds nothing by k (the mask covers the whole block), so
      // the only bound is the probe's fixed-size mask, sized for every
      // legal block. Always supported.
      return true;
    case BatchFastPath::Kind::kBlockedShbfM:
      return static_cast<const BlockedShbfM*>(impl)->num_pairs() <=
             BlockedShbfM::kMaxBatchPairs;
    case BatchFastPath::Kind::kNone:
      return false;
  }
  return false;
}

// One implementation serves both the string-keyed and the view-keyed public
// overloads; the fast paths are container-generic.
template <typename Keys>
void ContainsBatchImpl(const MembershipFilter& filter, const Keys& keys,
                       size_t batch_size, std::vector<uint8_t>* results) {
  results->resize(keys.size());
  if (keys.empty()) return;
  const BatchFastPath fp = filter.batch_fast_path();
  if (FastPathSupported(fp.kind, fp.impl)) {
    switch (fp.kind) {
      case BatchFastPath::Kind::kShbfM: {
        const auto* impl = static_cast<const ShbfM*>(fp.impl);
        TwoPassLoop(*impl, keys, batch_size,
                    [&](size_t i, const ShbfM::Probe& probe) {
                      (*results)[i] = impl->ResolveProbe(probe) ? 1 : 0;
                    });
        return;
      }
      case BatchFastPath::Kind::kBloom: {
        const auto* impl = static_cast<const BloomFilter*>(fp.impl);
        TwoPassLoop(*impl, keys, batch_size,
                    [&](size_t i, const BloomFilter::Probe& probe) {
                      (*results)[i] = impl->ResolveProbe(probe) ? 1 : 0;
                    });
        return;
      }
      case BatchFastPath::Kind::kShbfX: {
        // The multiplicity view of membership: count > 0 (same answer the
        // adapter's Contains derives from QueryCount).
        const auto* impl = static_cast<const ShbfX*>(fp.impl);
        TwoPassLoop(*impl, keys, batch_size,
                    [&](size_t i, const ShbfX::Probe& probe) {
                      (*results)[i] = impl->ResolveProbe(probe) > 0 ? 1 : 0;
                    });
        return;
      }
      case BatchFastPath::Kind::kShbfA: {
        // The association view of membership: any outcome but kNotFound.
        const auto* impl = static_cast<const ShbfA*>(fp.impl);
        TwoPassLoop(*impl, keys, batch_size,
                    [&](size_t i, const ShbfA::Probe& probe) {
                      (*results)[i] = impl->ResolveProbe(probe) !=
                                              AssociationOutcome::kNotFound
                                          ? 1
                                          : 0;
                    });
        return;
      }
      case BatchFastPath::Kind::kBlockedBloom: {
        // ResolveProbe is already one SIMD subset test over the whole
        // block (256 bits per AVX2 op), so the per-key resolve is vector
        // code all the way down.
        const auto* impl = static_cast<const BlockedBloomFilter*>(fp.impl);
        TwoPassLoop(*impl, keys, batch_size,
                    [&](size_t i, const BlockedBloomFilter::Probe& probe) {
                      (*results)[i] = impl->ResolveProbe(probe) ? 1 : 0;
                    });
        return;
      }
      case BatchFastPath::Kind::kBlockedShbfM: {
        const auto* impl = static_cast<const BlockedShbfM*>(fp.impl);
        BlockedShbfMGroupLoop(*impl, keys, batch_size, results);
        return;
      }
      case BatchFastPath::Kind::kNone:
        break;
    }
  }
  filter.ContainsBatch(keys, results);
}

}  // namespace

BatchQueryEngine::BatchQueryEngine(BatchOptions options)
    : batch_size_(options.batch_size < 1 ? 1 : options.batch_size) {}

void BatchQueryEngine::ContainsBatch(const MembershipFilter& filter,
                                     const std::vector<std::string>& keys,
                                     std::vector<uint8_t>* results) const {
  ContainsBatchImpl(filter, keys, batch_size_, results);
}

void BatchQueryEngine::ContainsBatch(const MembershipFilter& filter,
                                     const std::vector<std::string_view>& keys,
                                     std::vector<uint8_t>* results) const {
  ContainsBatchImpl(filter, keys, batch_size_, results);
}

void BatchQueryEngine::QueryCountBatch(const MultiplicityFilter& filter,
                                       const std::vector<std::string>& keys,
                                       std::vector<uint64_t>* counts) const {
  counts->resize(keys.size());
  if (keys.empty()) return;
  const BatchFastPath fp = filter.batch_fast_path();
  if (fp.kind == BatchFastPath::Kind::kShbfX &&
      FastPathSupported(fp.kind, fp.impl)) {
    const auto* impl = static_cast<const ShbfX*>(fp.impl);
    TwoPassLoop(*impl, keys, batch_size_,
                [&](size_t i, const ShbfX::Probe& probe) {
                  (*counts)[i] = impl->ResolveProbe(probe);
                });
    return;
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    (*counts)[i] = filter.QueryCount(keys[i]);
  }
}

void BatchQueryEngine::QueryBatch(
    const AssociationFilter& filter, const std::vector<std::string>& keys,
    std::vector<AssociationOutcome>* outcomes) const {
  outcomes->resize(keys.size());
  if (keys.empty()) return;
  const BatchFastPath fp = filter.batch_fast_path();
  if (fp.kind == BatchFastPath::Kind::kShbfA &&
      FastPathSupported(fp.kind, fp.impl)) {
    const auto* impl = static_cast<const ShbfA*>(fp.impl);
    TwoPassLoop(*impl, keys, batch_size_,
                [&](size_t i, const ShbfA::Probe& probe) {
                  (*outcomes)[i] = impl->ResolveProbe(probe);
                });
    return;
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    (*outcomes)[i] = filter.Query(keys[i]);
  }
}

void BatchQueryEngine::QueryCountBatch(const ShbfX& filter,
                                       const std::vector<std::string>& keys,
                                       MultiplicityReportPolicy policy,
                                       std::vector<uint32_t>* counts) const {
  counts->resize(keys.size());
  if (keys.empty()) return;
  if (filter.num_hashes() > ShbfX::kMaxBatchHashes) {
    for (size_t i = 0; i < keys.size(); ++i) {
      (*counts)[i] = filter.QueryCount(keys[i], policy);
    }
    return;
  }
  TwoPassLoop(filter, keys, batch_size_,
              [&](size_t i, const ShbfX::Probe& probe) {
                (*counts)[i] = filter.ResolveProbe(probe, policy);
              });
}

}  // namespace shbf
