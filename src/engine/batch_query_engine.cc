#include "engine/batch_query_engine.h"

#include <algorithm>

#include "baselines/bloom_filter.h"
#include "shbf/shbf_association.h"
#include "shbf/shbf_membership.h"

namespace shbf {
namespace {

// Runs the two-pass protocol over `keys` in groups of `group_size`:
// hash + prefetch the whole group, then resolve it, so every window pass 2
// reads is resident or in flight by the time it is loaded. `resolve(i, probe)`
// receives the key index and its prepared probe.
template <typename Impl, typename Resolve>
void TwoPassLoop(const Impl& impl, const std::vector<std::string>& keys,
                 size_t group_size, Resolve&& resolve) {
  std::vector<typename Impl::Probe> probes(
      std::min(group_size, keys.size()));
  for (size_t start = 0; start < keys.size(); start += group_size) {
    const size_t group = std::min(group_size, keys.size() - start);
    for (size_t g = 0; g < group; ++g) {
      impl.PrepareProbe(keys[start + g], &probes[g]);
      impl.PrefetchProbe(probes[g]);
    }
    for (size_t g = 0; g < group; ++g) {
      resolve(start + g, probes[g]);
    }
  }
}

// The probe protocol bounds k; a spec-built filter can exceed the bound, in
// which case the engine must decline the fast path rather than trip the
// implementation's CHECK.
bool FastPathSupported(BatchFastPath::Kind kind, const void* impl) {
  switch (kind) {
    case BatchFastPath::Kind::kShbfM:
      return static_cast<const ShbfM*>(impl)->num_hashes() / 2 <=
             ShbfM::kMaxBatchPairs;
    case BatchFastPath::Kind::kBloom:
      return static_cast<const BloomFilter*>(impl)->num_hashes() <=
             BloomFilter::kMaxBatchHashes;
    case BatchFastPath::Kind::kShbfX:
      return static_cast<const ShbfX*>(impl)->num_hashes() <=
             ShbfX::kMaxBatchHashes;
    case BatchFastPath::Kind::kShbfA:
      return static_cast<const ShbfA*>(impl)->num_hashes() <=
             ShbfA::kMaxBatchHashes;
    case BatchFastPath::Kind::kNone:
      return false;
  }
  return false;
}

}  // namespace

BatchQueryEngine::BatchQueryEngine(BatchOptions options)
    : batch_size_(options.batch_size < 1 ? 1 : options.batch_size) {}

void BatchQueryEngine::ContainsBatch(const MembershipFilter& filter,
                                     const std::vector<std::string>& keys,
                                     std::vector<uint8_t>* results) const {
  results->resize(keys.size());
  if (keys.empty()) return;
  const BatchFastPath fp = filter.batch_fast_path();
  if (FastPathSupported(fp.kind, fp.impl)) {
    switch (fp.kind) {
      case BatchFastPath::Kind::kShbfM: {
        const auto* impl = static_cast<const ShbfM*>(fp.impl);
        TwoPassLoop(*impl, keys, batch_size_,
                    [&](size_t i, const ShbfM::Probe& probe) {
                      (*results)[i] = impl->ResolveProbe(probe) ? 1 : 0;
                    });
        return;
      }
      case BatchFastPath::Kind::kBloom: {
        const auto* impl = static_cast<const BloomFilter*>(fp.impl);
        TwoPassLoop(*impl, keys, batch_size_,
                    [&](size_t i, const BloomFilter::Probe& probe) {
                      (*results)[i] = impl->ResolveProbe(probe) ? 1 : 0;
                    });
        return;
      }
      case BatchFastPath::Kind::kShbfX: {
        // The multiplicity view of membership: count > 0 (same answer the
        // adapter's Contains derives from QueryCount).
        const auto* impl = static_cast<const ShbfX*>(fp.impl);
        TwoPassLoop(*impl, keys, batch_size_,
                    [&](size_t i, const ShbfX::Probe& probe) {
                      (*results)[i] = impl->ResolveProbe(probe) > 0 ? 1 : 0;
                    });
        return;
      }
      case BatchFastPath::Kind::kShbfA: {
        // The association view of membership: any outcome but kNotFound.
        const auto* impl = static_cast<const ShbfA*>(fp.impl);
        TwoPassLoop(*impl, keys, batch_size_,
                    [&](size_t i, const ShbfA::Probe& probe) {
                      (*results)[i] = impl->ResolveProbe(probe) !=
                                              AssociationOutcome::kNotFound
                                          ? 1
                                          : 0;
                    });
        return;
      }
      case BatchFastPath::Kind::kNone:
        break;
    }
  }
  filter.ContainsBatch(keys, results);
}

void BatchQueryEngine::QueryCountBatch(const MultiplicityFilter& filter,
                                       const std::vector<std::string>& keys,
                                       std::vector<uint64_t>* counts) const {
  counts->resize(keys.size());
  if (keys.empty()) return;
  const BatchFastPath fp = filter.batch_fast_path();
  if (fp.kind == BatchFastPath::Kind::kShbfX &&
      FastPathSupported(fp.kind, fp.impl)) {
    const auto* impl = static_cast<const ShbfX*>(fp.impl);
    TwoPassLoop(*impl, keys, batch_size_,
                [&](size_t i, const ShbfX::Probe& probe) {
                  (*counts)[i] = impl->ResolveProbe(probe);
                });
    return;
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    (*counts)[i] = filter.QueryCount(keys[i]);
  }
}

void BatchQueryEngine::QueryBatch(
    const AssociationFilter& filter, const std::vector<std::string>& keys,
    std::vector<AssociationOutcome>* outcomes) const {
  outcomes->resize(keys.size());
  if (keys.empty()) return;
  const BatchFastPath fp = filter.batch_fast_path();
  if (fp.kind == BatchFastPath::Kind::kShbfA &&
      FastPathSupported(fp.kind, fp.impl)) {
    const auto* impl = static_cast<const ShbfA*>(fp.impl);
    TwoPassLoop(*impl, keys, batch_size_,
                [&](size_t i, const ShbfA::Probe& probe) {
                  (*outcomes)[i] = impl->ResolveProbe(probe);
                });
    return;
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    (*outcomes)[i] = filter.Query(keys[i]);
  }
}

void BatchQueryEngine::QueryCountBatch(const ShbfX& filter,
                                       const std::vector<std::string>& keys,
                                       MultiplicityReportPolicy policy,
                                       std::vector<uint32_t>* counts) const {
  counts->resize(keys.size());
  if (keys.empty()) return;
  if (filter.num_hashes() > ShbfX::kMaxBatchHashes) {
    for (size_t i = 0; i < keys.size(); ++i) {
      (*counts)[i] = filter.QueryCount(keys[i], policy);
    }
    return;
  }
  TwoPassLoop(filter, keys, batch_size_,
              [&](size_t i, const ShbfX::Probe& probe) {
                (*counts)[i] = filter.ResolveProbe(probe, policy);
              });
}

}  // namespace shbf
