#include "engine/batch_query_engine.h"

#include <algorithm>

#include "baselines/blocked_bloom_filter.h"
#include "baselines/bloom_filter.h"
#include "baselines/split_block_bloom_filter.h"
#include "core/simd.h"
#include "obs/metrics.h"
#include "shbf/blocked_shbf_membership.h"
#include "shbf/shbf_association.h"
#include "shbf/shbf_membership.h"
#include "shbf/split_block_shbf_membership.h"

namespace shbf {
namespace {

// Below this footprint the filter is cache-resident and the two-pass
// prefetch protocol is pure overhead: the staging pass writes probes to a
// scratch vector that pass 2 immediately re-reads, while the prefetches hit
// lines already in cache. Group size 1 degrades TwoPassLoop to the straight
// hash → mask → test loop (prepare and resolve back to back, no staging
// traffic), which measures faster for every blocked/split variant that fits
// here (docs/benchmarks.md "Cache-resident batch sizing"). 4 MiB sits below
// typical shared-LLC slices while safely above L2, so filters this small are
// resident once the batch has touched them.
constexpr size_t kCacheResidentBytes = size_t{4} << 20;

// The group size the blocked/split fast paths actually run with: the
// configured batch_size for memory-resident filters (prefetch pipelining
// wins), 1 for cache-resident ones (staging overhead loses).
size_t EffectiveGroupSize(size_t filter_bytes, size_t batch_size) {
  return filter_bytes <= kCacheResidentBytes ? 1 : batch_size;
}

// A split-block probe touches exactly one line, prefetched inside
// PrepareProbe, so the staging group only has to keep one fetch per key in
// flight — eight keys ahead already saturates the core's line-fill buffers
// (10-12 on current x86). Deeper groups spill probe state out of registers
// while the surplus prefetches queue behind the buffers: group 8 measures
// ~14% over group 32 at gate scale (docs/benchmarks.md "Cache-resident
// batch sizing"). Gather-style paths keep the full batch_size — they issue
// k fetches per key and need the wider window.
constexpr size_t kSplitBlockGroupCap = 8;

// Runs the two-pass protocol over `keys` in groups of `group_size`:
// hash + prefetch the whole group, then resolve it, so every window pass 2
// reads is resident or in flight by the time it is loaded. `resolve(i, probe)`
// receives the key index and its prepared probe. `Keys` is any container of
// string-viewable elements (std::string or std::string_view).
template <typename Impl, typename Keys, typename Resolve>
void TwoPassLoop(const Impl& impl, const Keys& keys, size_t group_size,
                 Resolve&& resolve) {
  std::vector<typename Impl::Probe> probes(
      std::min(group_size, keys.size()));
  for (size_t start = 0; start < keys.size(); start += group_size) {
    const size_t group = std::min(group_size, keys.size() - start);
    for (size_t g = 0; g < group; ++g) {
      impl.PrepareProbe(keys[start + g], &probes[g]);
      impl.PrefetchProbe(probes[g]);
    }
    for (size_t g = 0; g < group; ++g) {
      resolve(start + g, probes[g]);
    }
  }
}

// The blocked ShBF_M resolve, vectorized across the group: pass 2 gathers
// every pair window of the group (now resident thanks to the prefetch pass)
// into one flat array, replicates each key's `need` pattern alongside, and
// hands the whole gather to simd::MaskTestMany — 4 windows = 8 probed bits
// per AVX2 op (NEON: 2 = 4) instead of one test-and-branch per window. The
// per-key verdict is the AND over its pair lanes.
template <typename Keys>
void BlockedShbfMGroupLoop(const BlockedShbfM& impl, const Keys& keys,
                           size_t group_size, std::vector<uint8_t>* results) {
  const uint32_t pairs = impl.num_pairs();
  const size_t cap = std::min(group_size, keys.size());
  std::vector<BlockedShbfM::Probe> probes(cap);
  std::vector<uint64_t> windows(cap * pairs);
  std::vector<uint64_t> needs(cap * pairs);
  std::vector<uint8_t> hits(cap * pairs);
  for (size_t start = 0; start < keys.size(); start += group_size) {
    const size_t group = std::min(group_size, keys.size() - start);
    for (size_t g = 0; g < group; ++g) {
      // No PrefetchProbe here: Derive already prefetched the block between
      // its two hash passes, and a second prefetch instruction per key is
      // measurable overhead on prefetch-queue-limited parts.
      impl.PrepareProbe(keys[start + g], &probes[g]);
    }
    size_t n = 0;
    for (size_t g = 0; g < group; ++g) {
      for (uint32_t p = 0; p < pairs; ++p, ++n) {
        windows[n] = impl.bits().LoadWindow(probes[g].bases[p]);
        needs[n] = probes[g].need;
      }
    }
    simd::MaskTestMany(windows.data(), needs.data(), n, hits.data());
    n = 0;
    for (size_t g = 0; g < group; ++g) {
      uint8_t ok = 1;
      for (uint32_t p = 0; p < pairs; ++p, ++n) ok &= hits[n];
      (*results)[start + g] = ok;
    }
  }
}

// The split-block probe loop: like TwoPassLoop, but without the explicit
// PrefetchProbe pass — the split filters' PrepareProbe issues the block
// prefetch the moment the block index exists (before the mask build), so a
// second prefetch per key is pure instruction overhead. Pass 2 is one
// BlockSubsetTest per key; no gather/staging of windows at all. With
// group_size 1 this degrades to the straight hash → mask → test loop the
// cache-resident path wants.
template <typename Impl, typename Keys>
void SplitBlockProbeLoop(const Impl& impl, const Keys& keys,
                         size_t group_size, std::vector<uint8_t>* results) {
  std::vector<typename Impl::Probe> probes(
      std::min(group_size, keys.size()));
  for (size_t start = 0; start < keys.size(); start += group_size) {
    const size_t group = std::min(group_size, keys.size() - start);
    for (size_t g = 0; g < group; ++g) {
      impl.PrepareProbe(keys[start + g], &probes[g]);
    }
    for (size_t g = 0; g < group; ++g) {
      (*results)[start + g] = impl.ResolveProbe(probes[g]) ? 1 : 0;
    }
  }
}

// The fused-kernel variant: pass 1 hashes every key of the group into its
// shift-lane array (PrepareShiftLanes also issues the block prefetch), ONE
// simd::MaskFromShifts call turns the whole group's lanes into bit words
// (AVX2 `vpsllvq`: 4 lanes per op, AVX-512: 8), and pass 2 folds each
// key's words back into its block mask and resolves.
//
// This only beats the probe loop's per-key scalar build when there are
// enough lanes per key to amortize the round-trip: the lanes detour
// through a scratch array, and at the default geometry (k = 8 → 8 lanes)
// the sporadically-issued vector shift pays more in transitions than it
// saves over 8 independent shift/ORs the OoO core pipelines for free —
// measured ~8% slower at gate scale (docs/benchmarks.md "Split-block
// probe loop"). Past kFuseLanes lanes the scalar build is long enough
// that the 4-8x lane throughput wins.
constexpr uint32_t kFuseLanes = 16;

template <typename Impl, typename Keys>
void SplitBlockGroupLoop(const Impl& impl, const Keys& keys,
                         size_t group_size, std::vector<uint8_t>* results) {
  const uint32_t lanes = impl.probe_lanes();
  const size_t cap = std::min(group_size, keys.size());
  std::vector<size_t> blocks(cap);
  std::vector<uint64_t> shifts(cap * lanes);
  std::vector<uint64_t> bit_words(cap * lanes);
  for (size_t start = 0; start < keys.size(); start += group_size) {
    const size_t group = std::min(group_size, keys.size() - start);
    for (size_t g = 0; g < group; ++g) {
      impl.PrepareShiftLanes(keys[start + g], &blocks[g],
                             &shifts[g * lanes]);
    }
    simd::MaskFromShifts(shifts.data(), 1, group * lanes, bit_words.data());
    for (size_t g = 0; g < group; ++g) {
      (*results)[start + g] =
          impl.ResolveLanes(blocks[g], &bit_words[g * lanes]) ? 1 : 0;
    }
  }
}

// The probe protocol bounds k; a spec-built filter can exceed the bound, in
// which case the engine must decline the fast path rather than trip the
// implementation's CHECK.
bool FastPathSupported(BatchFastPath::Kind kind, const void* impl) {
  switch (kind) {
    case BatchFastPath::Kind::kShbfM:
      return static_cast<const ShbfM*>(impl)->num_hashes() / 2 <=
             ShbfM::kMaxBatchPairs;
    case BatchFastPath::Kind::kBloom:
      return static_cast<const BloomFilter*>(impl)->num_hashes() <=
             BloomFilter::kMaxBatchHashes;
    case BatchFastPath::Kind::kShbfX:
      return static_cast<const ShbfX*>(impl)->num_hashes() <=
             ShbfX::kMaxBatchHashes;
    case BatchFastPath::Kind::kShbfA:
      return static_cast<const ShbfA*>(impl)->num_hashes() <=
             ShbfA::kMaxBatchHashes;
    case BatchFastPath::Kind::kBlockedBloom:
      // FillMask bounds nothing by k (the mask covers the whole block), so
      // the only bound is the probe's fixed-size mask, sized for every
      // legal block. Always supported.
      return true;
    case BatchFastPath::Kind::kBlockedShbfM:
      return static_cast<const BlockedShbfM*>(impl)->num_pairs() <=
             BlockedShbfM::kMaxBatchPairs;
    case BatchFastPath::Kind::kSplitBlockBloom:
      return static_cast<const SplitBlockBloomFilter*>(impl)->num_hashes() <=
             SplitBlockBloomFilter::kMaxBatchHashes;
    case BatchFastPath::Kind::kSplitBlockShbfM:
      return static_cast<const SplitBlockShbfM*>(impl)->num_pairs() <=
             SplitBlockShbfM::kMaxBatchPairs;
    case BatchFastPath::Kind::kNone:
      return false;
  }
  return false;
}

// Handles into the process-global registry, resolved once. The fastpath /
// virtual split is the number ops people tune first: a filter that silently
// fell off its SIMD fast path (unsupported k, wrong impl) shows up here as
// virtual_batches_total climbing instead of fastpath_batches_total.
struct EngineMetrics {
  obs::Counter* batches = nullptr;
  obs::Counter* fastpath_batches = nullptr;
  obs::Counter* virtual_batches = nullptr;
  obs::Histogram* batch_keys = nullptr;

  static const EngineMetrics& Get() {
    static const EngineMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      EngineMetrics m;
      m.batches = registry.GetCounter("engine.batches_total");
      m.fastpath_batches =
          registry.GetCounter("engine.fastpath_batches_total");
      m.virtual_batches = registry.GetCounter("engine.virtual_batches_total");
      m.batch_keys = registry.GetHistogram("engine.batch_keys");
      return m;
    }();
    return metrics;
  }
};

// Records one batch's entry stats and returns whether to keep recording
// (saves repeated Enabled() loads at the branch exits).
inline bool RecordBatchEntry(size_t num_keys) {
  if (!obs::Enabled()) return false;
  const EngineMetrics& m = EngineMetrics::Get();
  m.batches->Increment();
  m.batch_keys->Record(num_keys);
  return true;
}

// One implementation serves both the string-keyed and the view-keyed public
// overloads; the fast paths are container-generic.
template <typename Keys>
void ContainsBatchImpl(const MembershipFilter& filter, const Keys& keys,
                       size_t batch_size, std::vector<uint8_t>* results) {
  results->resize(keys.size());
  if (keys.empty()) return;
  const bool record = RecordBatchEntry(keys.size());
  const BatchFastPath fp = filter.batch_fast_path();
  if (FastPathSupported(fp.kind, fp.impl)) {
    if (record) EngineMetrics::Get().fastpath_batches->Increment();
    switch (fp.kind) {
      case BatchFastPath::Kind::kShbfM: {
        const auto* impl = static_cast<const ShbfM*>(fp.impl);
        TwoPassLoop(*impl, keys, batch_size,
                    [&](size_t i, const ShbfM::Probe& probe) {
                      (*results)[i] = impl->ResolveProbe(probe) ? 1 : 0;
                    });
        return;
      }
      case BatchFastPath::Kind::kBloom: {
        const auto* impl = static_cast<const BloomFilter*>(fp.impl);
        TwoPassLoop(*impl, keys, batch_size,
                    [&](size_t i, const BloomFilter::Probe& probe) {
                      (*results)[i] = impl->ResolveProbe(probe) ? 1 : 0;
                    });
        return;
      }
      case BatchFastPath::Kind::kShbfX: {
        // The multiplicity view of membership: count > 0 (same answer the
        // adapter's Contains derives from QueryCount).
        const auto* impl = static_cast<const ShbfX*>(fp.impl);
        TwoPassLoop(*impl, keys, batch_size,
                    [&](size_t i, const ShbfX::Probe& probe) {
                      (*results)[i] = impl->ResolveProbe(probe) > 0 ? 1 : 0;
                    });
        return;
      }
      case BatchFastPath::Kind::kShbfA: {
        // The association view of membership: any outcome but kNotFound.
        const auto* impl = static_cast<const ShbfA*>(fp.impl);
        TwoPassLoop(*impl, keys, batch_size,
                    [&](size_t i, const ShbfA::Probe& probe) {
                      (*results)[i] = impl->ResolveProbe(probe) !=
                                              AssociationOutcome::kNotFound
                                          ? 1
                                          : 0;
                    });
        return;
      }
      case BatchFastPath::Kind::kBlockedBloom: {
        // ResolveProbe is already one SIMD subset test over the whole
        // block (256 bits per AVX2 op), so the per-key resolve is vector
        // code all the way down.
        const auto* impl = static_cast<const BlockedBloomFilter*>(fp.impl);
        TwoPassLoop(*impl, keys,
                    EffectiveGroupSize(impl->bits().allocated_bytes(),
                                       batch_size),
                    [&](size_t i, const BlockedBloomFilter::Probe& probe) {
                      (*results)[i] = impl->ResolveProbe(probe) ? 1 : 0;
                    });
        return;
      }
      case BatchFastPath::Kind::kBlockedShbfM: {
        const auto* impl = static_cast<const BlockedShbfM*>(fp.impl);
        BlockedShbfMGroupLoop(
            *impl, keys,
            EffectiveGroupSize(impl->bits().allocated_bytes(), batch_size),
            results);
        return;
      }
      case BatchFastPath::Kind::kSplitBlockBloom: {
        // No gather/staging pass at all: a key's whole answer is one
        // block mask + one BlockSubsetTest. Narrow-k filters stage probes
        // (scalar mask build inside PrepareProbe); wide-k ones fuse the
        // group's mask construction into one MaskFromShifts kernel call.
        const auto* impl = static_cast<const SplitBlockBloomFilter*>(fp.impl);
        const size_t group =
            std::min(EffectiveGroupSize(impl->bits().allocated_bytes(),
                                        batch_size),
                     kSplitBlockGroupCap);
        if (group > 1 && impl->probe_lanes() >= kFuseLanes) {
          SplitBlockGroupLoop(*impl, keys, group, results);
        } else {
          SplitBlockProbeLoop(*impl, keys, group, results);
        }
        return;
      }
      case BatchFastPath::Kind::kSplitBlockShbfM: {
        // Same one-vector-op shape as split_block_bloom: the pair bits are
        // baked into the block mask, so no per-pair gather loop (the
        // blocked_shbf_m path above needs one).
        const auto* impl = static_cast<const SplitBlockShbfM*>(fp.impl);
        const size_t group =
            std::min(EffectiveGroupSize(impl->bits().allocated_bytes(),
                                        batch_size),
                     kSplitBlockGroupCap);
        if (group > 1 && impl->probe_lanes() >= kFuseLanes) {
          SplitBlockGroupLoop(*impl, keys, group, results);
        } else {
          SplitBlockProbeLoop(*impl, keys, group, results);
        }
        return;
      }
      case BatchFastPath::Kind::kNone:
        break;
    }
  }
  if (record) EngineMetrics::Get().virtual_batches->Increment();
  filter.ContainsBatch(keys, results);
}

}  // namespace

BatchQueryEngine::BatchQueryEngine(BatchOptions options)
    : batch_size_(options.batch_size < 1 ? 1 : options.batch_size) {}

void BatchQueryEngine::ContainsBatch(const MembershipFilter& filter,
                                     const std::vector<std::string>& keys,
                                     std::vector<uint8_t>* results) const {
  ContainsBatchImpl(filter, keys, batch_size_, results);
}

void BatchQueryEngine::ContainsBatch(const MembershipFilter& filter,
                                     const std::vector<std::string_view>& keys,
                                     std::vector<uint8_t>* results) const {
  ContainsBatchImpl(filter, keys, batch_size_, results);
}

void BatchQueryEngine::QueryCountBatch(const MultiplicityFilter& filter,
                                       const std::vector<std::string>& keys,
                                       std::vector<uint64_t>* counts) const {
  counts->resize(keys.size());
  if (keys.empty()) return;
  const bool record = RecordBatchEntry(keys.size());
  const BatchFastPath fp = filter.batch_fast_path();
  if (fp.kind == BatchFastPath::Kind::kShbfX &&
      FastPathSupported(fp.kind, fp.impl)) {
    if (record) EngineMetrics::Get().fastpath_batches->Increment();
    const auto* impl = static_cast<const ShbfX*>(fp.impl);
    TwoPassLoop(*impl, keys, batch_size_,
                [&](size_t i, const ShbfX::Probe& probe) {
                  (*counts)[i] = impl->ResolveProbe(probe);
                });
    return;
  }
  if (record) EngineMetrics::Get().virtual_batches->Increment();
  for (size_t i = 0; i < keys.size(); ++i) {
    (*counts)[i] = filter.QueryCount(keys[i]);
  }
}

void BatchQueryEngine::QueryBatch(
    const AssociationFilter& filter, const std::vector<std::string>& keys,
    std::vector<AssociationOutcome>* outcomes) const {
  outcomes->resize(keys.size());
  if (keys.empty()) return;
  const bool record = RecordBatchEntry(keys.size());
  const BatchFastPath fp = filter.batch_fast_path();
  if (fp.kind == BatchFastPath::Kind::kShbfA &&
      FastPathSupported(fp.kind, fp.impl)) {
    if (record) EngineMetrics::Get().fastpath_batches->Increment();
    const auto* impl = static_cast<const ShbfA*>(fp.impl);
    TwoPassLoop(*impl, keys, batch_size_,
                [&](size_t i, const ShbfA::Probe& probe) {
                  (*outcomes)[i] = impl->ResolveProbe(probe);
                });
    return;
  }
  if (record) EngineMetrics::Get().virtual_batches->Increment();
  for (size_t i = 0; i < keys.size(); ++i) {
    (*outcomes)[i] = filter.Query(keys[i]);
  }
}

void BatchQueryEngine::QueryCountBatch(const ShbfX& filter,
                                       const std::vector<std::string>& keys,
                                       MultiplicityReportPolicy policy,
                                       std::vector<uint32_t>* counts) const {
  counts->resize(keys.size());
  if (keys.empty()) return;
  if (filter.num_hashes() > ShbfX::kMaxBatchHashes) {
    for (size_t i = 0; i < keys.size(); ++i) {
      (*counts)[i] = filter.QueryCount(keys[i], policy);
    }
    return;
  }
  TwoPassLoop(filter, keys, batch_size_,
              [&](size_t i, const ShbfX::Probe& probe) {
                (*counts)[i] = filter.ResolveProbe(probe, policy);
              });
}

}  // namespace shbf
