#include "engine/dynamic_filter.h"

#include <algorithm>
#include <utility>

#include "api/filter_registry.h"
#include "core/check.h"
#include "core/serde.h"

namespace shbf {
namespace {

/// Seed salt of the delta's hash family: distinct from the active filter's
/// family so a key colliding there is independent here.
constexpr uint64_t kDeltaSeedSalt = 0xde17a5a17ed5eedbull;

/// Delta geometry: ~16 bits and 4 probes per budgeted key keeps the delta's
/// own FPR contribution ≈ 0.3% at full fill; 4-bit counters match §3.3.
CountingShbfM::Params DeltaParams(const FilterSpec& spec,
                                  size_t delta_capacity) {
  CountingShbfM::Params params;
  params.num_bits = std::max<size_t>(size_t{1024}, delta_capacity * 16);
  params.num_hashes = 4;
  params.counter_bits = 4;
  params.hash_algorithm = spec.hash_algorithm;
  params.seed = spec.seed ^ kDeltaSeedSalt;
  return params;
}

}  // namespace

DynamicFilter::DynamicFilter(std::unique_ptr<MembershipFilter> active,
                             const FilterSpec& spec, size_t delta_capacity)
    : name_(std::string(kNamePrefix) + std::string(active->name())),
      spec_(spec),
      delta_capacity_(delta_capacity < 1 ? 1 : delta_capacity),
      active_(std::move(active)),
      active_caps_(active_->capabilities()),
      delta_(DeltaParams(spec, delta_capacity_)) {
  SHBF_CHECK(spec_.delta_capacity == 0 && !spec_.auto_scale &&
             spec_.shards == 1)
      << "DynamicFilter: base spec must be sanitized (no nested wrappers)";
}

void DynamicFilter::Add(std::string_view key) {
  auto queued = pending_removes_.find(key);
  if (queued != pending_removes_.end()) {
    // Net no-op against the active side: the key is still there, so
    // cancelling the queued remove is exact (and order-safe for
    // set-semantic bases, where replaying add-then-remove would drop it).
    if (--queued->second == 0) pending_removes_.erase(queued);
    --pending_remove_total_;
    return;
  }
  auto [it, inserted] = pending_adds_.emplace(key, 1);
  if (!inserted) ++it->second;
  ++pending_add_total_;
  delta_.Insert(key);
  MaybeFold();
}

Status DynamicFilter::Remove(std::string_view key) {
  auto pending = pending_adds_.find(key);
  if (pending != pending_adds_.end()) {
    // The key never reached the active side; cancel one pending add. The
    // delta filter keeps its bits until the fold clears it — an over-
    // approximation (extra false positives), never a false negative — so
    // the occurrence moves to the cancelled log, which keeps it counted
    // against the epoch budget and reproducible by serde.
    if (--pending->second == 0) pending_adds_.erase(pending);
    --pending_add_total_;
    auto [it, inserted] = cancelled_adds_.emplace(key, 1);
    if (!inserted) ++it->second;
    ++cancelled_total_;
    MaybeFold();
    return Status::Ok();
  }
  if ((active_caps_ & kRemove) == 0) {
    return Status::FailedPrecondition(
        name_ + ": active filter \"" + std::string(active_->name()) +
        "\" does not support Remove");
  }
  // Gate on the ACTIVE side only: a queued remove acts on the active
  // filter at the fold, so a key the active filter can prove absent must
  // be rejected here. Gating on delta ∪ active would let a delta false
  // positive queue a remove that a later Add of the same key then
  // "cancels" — dropping that add entirely and turning it into a false
  // negative after the fold.
  if (!active_->Contains(key)) {
    return Status::NotFound(name_ + ": Remove of an absent key");
  }
  auto [it, inserted] = pending_removes_.emplace(key, 1);
  if (!inserted) ++it->second;
  ++pending_remove_total_;
  MaybeFold();
  return Status::Ok();
}

bool DynamicFilter::Contains(std::string_view key) const {
  return (delta_in_use() && delta_.Contains(key)) || active_->Contains(key);
}

void DynamicFilter::ContainsBatch(const std::vector<std::string>& keys,
                                  std::vector<uint8_t>* results) const {
  active_->ContainsBatch(keys, results);
  if (!delta_in_use()) return;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (!(*results)[i] && delta_.Contains(keys[i])) (*results)[i] = 1;
  }
}

size_t DynamicFilter::num_elements() const {
  size_t total = active_->num_elements() + pending_add_total_;
  return total - std::min(pending_remove_total_, total);
}

size_t DynamicFilter::memory_bytes() const {
  size_t pending_bytes = 0;
  for (const auto& [key, count] : pending_adds_) {
    pending_bytes += key.size() + 24;
  }
  for (const auto& [key, count] : pending_removes_) {
    pending_bytes += key.size() + 24;
  }
  for (const auto& [key, count] : cancelled_adds_) {
    pending_bytes += key.size() + 24;
  }
  return active_->memory_bytes() + delta_.num_bits() / 8 +
         delta_.counters().num_counters() *
             delta_.counters().bits_per_counter() / 8 +
         pending_bytes;
}

void DynamicFilter::Clear() {
  active_->Clear();
  delta_.Clear();
  pending_adds_.clear();
  pending_removes_.clear();
  cancelled_adds_.clear();
  pending_add_total_ = 0;
  pending_remove_total_ = 0;
  cancelled_total_ = 0;
  epoch_ = 0;
}

void DynamicFilter::Flush() {
  // Residual delta bits (cancelled pending adds) also warrant a fold: a
  // flushed filter must answer exactly like a scratch-built reference.
  if (pending_mutations() > 0 || cancelled_total_ > 0) Fold();
}

void DynamicFilter::Fold() {
  for (const auto& [key, count] : pending_adds_) {
    for (uint64_t i = 0; i < count; ++i) active_->Add(key);
  }
  for (const auto& [key, count] : pending_removes_) {
    for (uint64_t i = 0; i < count; ++i) {
      // kNotFound here means the queued remove targeted an active-side
      // false positive; dropping it is the documented hazard resolution.
      if (!active_->Remove(key).ok()) break;
    }
  }
  pending_adds_.clear();
  pending_removes_.clear();
  cancelled_adds_.clear();
  pending_add_total_ = 0;
  pending_remove_total_ = 0;
  cancelled_total_ = 0;
  delta_.Clear();
  ++epoch_;
  // Force lazily-built actives (shbf_x/shbf_a adapters, every generation
  // of an auto-scaling chain) to rebuild NOW, so const queries between
  // folds never mutate — that is what lets the sharded wrapper read this
  // filter under a shared lock. A probe query would not do: a composite's
  // short-circuiting Contains can route past a still-dirty component.
  active_->PrepareForConstReads();
}

std::string DynamicFilter::ToBytes() const {
  ByteWriter writer;
  writer.PutU64(delta_capacity_);
  writer.PutU64(epoch_);
  spec_serde::WriteSpec(&writer, spec_);
  std::vector<std::pair<std::string, uint64_t>> entries(
      pending_adds_.begin(), pending_adds_.end());
  serde::WriteKeyCountList(&writer, entries);
  entries.assign(pending_removes_.begin(), pending_removes_.end());
  serde::WriteKeyCountList(&writer, entries);
  // The cancelled log too: the restored delta must hold the exact same
  // bits, or answers would drift across a round trip.
  entries.assign(cancelled_adds_.begin(), cancelled_adds_.end());
  serde::WriteKeyCountList(&writer, entries);
  std::string active_blob = FilterRegistry::Serialize(*active_);
  writer.PutU64(active_blob.size());
  writer.PutBytes(active_blob.data(), active_blob.size());
  return writer.Take();
}

Status DynamicFilter::Deserialize(std::string_view envelope_name,
                                  std::string_view payload,
                                  const FilterRegistry& registry,
                                  std::unique_ptr<MembershipFilter>* out) {
  if (envelope_name.substr(0, kNamePrefix.size()) != kNamePrefix) {
    return Status::InvalidArgument("dynamic: envelope name lacks prefix");
  }
  const std::string active_name(envelope_name.substr(kNamePrefix.size()));
  ByteReader reader(payload);
  uint64_t delta_capacity = 0;
  uint64_t epoch = 0;
  FilterSpec spec;
  std::vector<std::pair<std::string, uint64_t>> adds;
  std::vector<std::pair<std::string, uint64_t>> removes;
  std::vector<std::pair<std::string, uint64_t>> cancelled;
  uint64_t blob_size = 0;
  if (!reader.GetU64(&delta_capacity) || !reader.GetU64(&epoch) ||
      !spec_serde::ReadSpec(&reader, &spec) ||
      !serde::ReadKeyCountList(&reader, &adds) ||
      !serde::ReadKeyCountList(&reader, &removes) ||
      !serde::ReadKeyCountList(&reader, &cancelled) ||
      !reader.GetU64(&blob_size) || blob_size != reader.remaining()) {
    return Status::InvalidArgument("dynamic: bad payload framing");
  }
  if (delta_capacity > FilterSpec::kMaxDeltaCapacity) {
    // The delta's geometry is derived from this field, so an untrusted
    // blob must not be able to demand an absurd allocation (the same
    // amplification guard ReadKeyList applies to element counts).
    return Status::InvalidArgument("dynamic: delta_capacity out of range");
  }
  // A fold fires the moment pending + cancelled reaches delta_capacity, so
  // a legitimate blob's totals are always strictly below it. Reject the
  // rest BEFORE the replay loops below — a patched per-key count of 2^40
  // would otherwise spin Insert for days.
  const uint64_t budget = delta_capacity < 1 ? 1 : delta_capacity;
  uint64_t total_logged = 0;
  for (const auto* list : {&adds, &removes, &cancelled}) {
    for (const auto& [key, count] : *list) {
      if (count == 0) {
        return Status::InvalidArgument("dynamic: zero-count log entry");
      }
      total_logged += count;
      if (total_logged >= budget) {
        return Status::InvalidArgument(
            "dynamic: pending logs exceed delta_capacity");
      }
    }
  }
  if (spec.delta_capacity != 0 || spec.auto_scale || spec.shards != 1) {
    return Status::InvalidArgument("dynamic: nested spec is not sanitized");
  }
  std::string active_blob(reader.remaining(), '\0');
  if (!reader.GetBytes(active_blob.data(), active_blob.size())) {
    return Status::InvalidArgument("dynamic: truncated active envelope");
  }
  std::unique_ptr<MembershipFilter> active;
  Status s = registry.Deserialize(active_blob, &active);
  if (!s.ok()) return s;
  if (active->name() != active_name) {
    return Status::InvalidArgument(
        "dynamic: nested blob names \"" + std::string(active->name()) +
        "\", envelope says \"" + active_name + "\"");
  }
  auto filter = std::make_unique<DynamicFilter>(std::move(active), spec,
                                                delta_capacity);
  for (const auto& [key, count] : adds) {
    filter->pending_adds_.emplace(key, count);
    filter->pending_add_total_ += count;
    for (uint64_t i = 0; i < count; ++i) filter->delta_.Insert(key);
  }
  for (const auto& [key, count] : removes) {
    filter->pending_removes_.emplace(key, count);
    filter->pending_remove_total_ += count;
  }
  for (const auto& [key, count] : cancelled) {
    // Cancelled adds replay into the delta only — their bits must survive
    // the round trip (answer fidelity), but the fold will not re-add them.
    filter->cancelled_adds_.emplace(key, count);
    filter->cancelled_total_ += count;
    for (uint64_t i = 0; i < count; ++i) filter->delta_.Insert(key);
  }
  filter->epoch_ = epoch;
  *out = std::move(filter);
  return Status::Ok();
}

}  // namespace shbf
