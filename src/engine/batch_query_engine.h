// BatchQueryEngine — the batched front end for every filter in the registry.
//
// The paper's speed claim (§6: "one memory access per query") leaves two
// latencies on the table when queries arrive one at a time: the hash
// computation of key i+1 cannot overlap the memory access of key i, and a
// cache miss stalls the whole pipeline. The engine closes both gaps with a
// two-pass batch protocol over groups of `batch_size` keys:
//
//   pass 1  PrepareProbe   every hash of every key in the group (pure ALU)
//           PrefetchProbe  __builtin_prefetch for every word pass 2 reads
//   pass 2  ResolveProbe   test the now-resident (or in-flight) windows
//
// The protocol is implemented natively — without virtual dispatch — by the
// six structures whose query is a pure windowed-read (ShbfM §3, ShbfA §4,
// ShbfX §5, the classic Bloom filter, and the cache-blocked variants
// BlockedBloomFilter / BlockedShbfM); the engine discovers them through
// MembershipFilter::batch_fast_path(). Every other registered filter is
// served through its virtual interface, so the engine answers for all
// schemes and is bit-identical to the per-key path in every case
// (tests/batch_engine_test.cc enforces this).
//
// The blocked ShBF_M path goes one step further: pass 2 gathers every pair
// window of the group into a flat array and hands it to the SIMD kernel
// (core/simd.h) — 4 windows = 8 probed bits per AVX2 op (NEON: 2 = 4) —
// instead of testing windows one at a time. SHBF_FORCE_SCALAR demotes the
// kernel to its scalar reference without changing any answer.

#ifndef SHBF_ENGINE_BATCH_QUERY_ENGINE_H_
#define SHBF_ENGINE_BATCH_QUERY_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/set_query_filter.h"
#include "core/set_query_types.h"
#include "shbf/shbf_multiplicity.h"

namespace shbf {

/// Tuning knobs for BatchQueryEngine (FilterSpec::batch_size feeds this).
struct BatchOptions {
  /// Keys whose probes are prepared and prefetched before any is resolved.
  /// Larger groups expose more memory-level parallelism but hold more probe
  /// state live; 16–64 covers the useful range on current hardware. Values
  /// below 1 are treated as 1.
  size_t batch_size = 16;
};

/// Stateless (apart from its options) batched-query driver. One engine can
/// serve any number of filters from any number of threads concurrently; the
/// per-call scratch lives on the stack/heap of the call.
class BatchQueryEngine {
 public:
  explicit BatchQueryEngine(BatchOptions options = {});

  /// `results` is resized to `keys.size()`; entry i becomes 1 iff
  /// `filter.Contains(keys[i])` — bit-identical to the per-key path, only
  /// faster. Uses the non-virtual probe protocol when
  /// `filter.batch_fast_path()` offers one, the filter's own virtual
  /// ContainsBatch otherwise.
  void ContainsBatch(const MembershipFilter& filter,
                     const std::vector<std::string>& keys,
                     std::vector<uint8_t>* results) const;

  /// View-indexed overload: identical answers without requiring the caller
  /// to own the key bytes (the multi-set frontier descent passes views into
  /// its caller's keys instead of copying survivors). Views must stay valid
  /// for the duration of the call.
  void ContainsBatch(const MembershipFilter& filter,
                     const std::vector<std::string_view>& keys,
                     std::vector<uint8_t>* results) const;

  /// `counts` is resized to `keys.size()`; entry i becomes
  /// `filter.QueryCount(keys[i])`. Fast path: ShbfX.
  void QueryCountBatch(const MultiplicityFilter& filter,
                       const std::vector<std::string>& keys,
                       std::vector<uint64_t>* counts) const;

  /// `outcomes` is resized to `keys.size()`; entry i becomes
  /// `filter.Query(keys[i])`. Fast path: ShbfA.
  void QueryBatch(const AssociationFilter& filter,
                  const std::vector<std::string>& keys,
                  std::vector<AssociationOutcome>* outcomes) const;

  /// Concrete-class overload for callers holding a ShbfX directly (e.g.
  /// examples/flow_monitor.cc): batched QueryCount under an explicit
  /// report policy, which the interface-level path cannot express.
  void QueryCountBatch(const ShbfX& filter,
                       const std::vector<std::string>& keys,
                       MultiplicityReportPolicy policy,
                       std::vector<uint32_t>* counts) const;

  /// The configured group size (after clamping to >= 1).
  size_t batch_size() const { return batch_size_; }

 private:
  size_t batch_size_;
};

}  // namespace shbf

#endif  // SHBF_ENGINE_BATCH_QUERY_ENGINE_H_
