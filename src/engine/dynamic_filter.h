// DynamicFilter — epoch-based dynamic rebuild wrapper (the §3.2 update
// story generalized to every registered filter).
//
// The bulk-built structures (shbf_x, shbf_a adapters) are fast to query but
// pay a full rebuild whenever an Add interleaves with a query — the cost
// called out in src/api/set_query_filter.h. This wrapper makes them (and any
// other base) behave incrementally:
//
//          Add/Remove                     Contains
//              │                             │
//              ▼                             ▼
//        ┌───────────┐  delta ∪ active  ┌─────────┐
//        │   delta   │◄─────────────────┤  query  │
//        │ (CShBF_M  │                  └────┬────┘
//        │  + exact  │                       │
//        │  logs)    │     fold every        ▼
//        └─────┬─────┘  delta_capacity  ┌───────────┐
//              └──────── mutations ────►│  active   │ immutable between
//                     (one **epoch**)   │ (any base)│ epochs; rebuilt
//                                       └───────────┘ eagerly at the fold
//
// * Adds land in a small counting-ShBF delta (plus an exact pending log the
//   fold replays); queries consult delta ∪ active, so answers keep the
//   no-false-negative contract at all times.
// * Removes cancel a pending add when possible; otherwise they queue
//   against the active side (which must advertise kRemove) and take effect
//   at the next fold. Until then the filter over-approximates — extra false
//   positives, never false negatives.
// * Every `delta_capacity` net mutations the delta is FOLDED into the
//   active filter (one epoch): pending adds/removes replay, the active
//   filter rebuilds once, the delta clears. Between folds the active side
//   is never mutated, so const queries are pure and the sharded wrapper can
//   read it under a shared lock (exactly one bounded rebuild pause per
//   shard per epoch).
// * At every epoch boundary (pending == 0) the wrapper answers bit-
//   identically to a scratch-built base filter over the surviving multiset
//   — bench/churn_throughput.cc --smoke enforces this.
//
// FilterRegistry::Create builds one when FilterSpec::delta_capacity > 0 and
// FilterRegistry::Deserialize restores it from its "dynamic/<base>"
// envelope (nested: the active filter's own envelope rides inside).

#ifndef SHBF_ENGINE_DYNAMIC_FILTER_H_
#define SHBF_ENGINE_DYNAMIC_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/filter_spec.h"
#include "api/set_query_filter.h"
#include "shbf/counting_shbf_membership.h"

namespace shbf {

class FilterRegistry;

class DynamicFilter : public MembershipFilter {
 public:
  /// Envelope names are "dynamic/<active>", e.g. "dynamic/shbf_x" or
  /// "dynamic/scaling/shbf_m" when the active side auto-scales.
  static constexpr std::string_view kNamePrefix = "dynamic/";

  /// Wraps `active` (already built from `spec`, which must carry
  /// delta_capacity = 0 / auto_scale = false / shards = 1 so nested replay
  /// serde cannot re-wrap). `delta_capacity` < 1 is clamped to 1.
  DynamicFilter(std::unique_ptr<MembershipFilter> active,
                const FilterSpec& spec, size_t delta_capacity);

  std::string_view name() const override { return name_; }

  /// Lands in the delta (or cancels a pending remove); folds when the
  /// pending-mutation budget is reached.
  void Add(std::string_view key) override;

  /// Cancels a pending add when one exists (exact, hazard-free); otherwise
  /// queues against the active side, which must advertise kRemove. Queued
  /// removes take effect at the next fold.
  Status Remove(std::string_view key) override;

  /// delta ∪ active; no false negatives at any point between epochs.
  bool Contains(std::string_view key) const override;

  void ContainsBatch(const std::vector<std::string>& keys,
                     std::vector<uint8_t>* results) const override;

  /// The active filter's fast path is only the whole answer when the delta
  /// holds no bits at all (cancelled pending adds leave residual bits until
  /// the fold — every query path must keep consulting them identically);
  /// otherwise the engine must go through ContainsBatch.
  BatchFastPath batch_fast_path() const override {
    return delta_in_use() ? BatchFastPath{} : active_->batch_fast_path();
  }

  void PrepareForConstReads() override { active_->PrepareForConstReads(); }

  bool IncrementalAdd() const override { return true; }
  uint32_t capabilities() const override {
    return kIncrementalAdd | (active_caps_ & kRemove);
  }

  size_t num_elements() const override;
  size_t memory_bytes() const override;
  void Clear() override;

  /// Folds the delta now regardless of fill (epoch boundary on demand);
  /// no-op when nothing is pending and the delta holds no residual bits.
  void Flush();

  /// Completed folds since construction / Clear().
  uint64_t epoch() const { return epoch_; }

  /// Pending mutations (adds + queued removes) in the current epoch.
  size_t pending_mutations() const {
    return pending_add_total_ + pending_remove_total_;
  }

  /// Add occurrences cancelled by a Remove this epoch: their bits stay in
  /// the delta until the fold, so they count toward the epoch budget (a
  /// transient add/remove workload must still fold, or the delta's FPR
  /// would climb without bound) and are reproduced by serde (answers must
  /// survive a round trip bit-for-bit, residual noise included).
  size_t cancelled_adds() const { return cancelled_total_; }

  size_t delta_capacity() const { return delta_capacity_; }
  const MembershipFilter& active() const { return *active_; }

  /// Payload: delta_capacity, epoch, pending logs, then the active filter's
  /// nested registry envelope.
  std::string ToBytes() const override;

  /// Reconstructs from a ToBytes() payload; `envelope_name` is the full
  /// "dynamic/<active>" name and `registry` resolves the nested envelope.
  static Status Deserialize(std::string_view envelope_name,
                            std::string_view payload,
                            const FilterRegistry& registry,
                            std::unique_ptr<MembershipFilter>* out);

 private:
  void Fold();
  void MaybeFold() {
    // Cancelled adds spend delta bits too, so they consume epoch budget.
    if (pending_mutations() + cancelled_total_ >= delta_capacity_) Fold();
  }

  /// True iff delta_ has absorbed any Insert since the last fold/Clear —
  /// NOT the same as pending_adds_ being non-empty: a cancelled pending add
  /// leaves its bits in the delta until the fold, and scalar/batch/fast-
  /// path queries must all keep consulting them consistently.
  bool delta_in_use() const {
    return pending_add_total_ + cancelled_total_ > 0;
  }

  std::string name_;
  FilterSpec spec_;  // sanitized base spec (delta geometry + serde)
  size_t delta_capacity_;
  std::unique_ptr<MembershipFilter> active_;
  uint32_t active_caps_;
  CountingShbfM delta_;
  // Exact pending logs the fold replays, plus the cancelled-add log that
  // reproduces the delta's residual bits (serde fidelity + epoch budget).
  // std::map keeps serde deterministic and allows string_view lookups.
  std::map<std::string, uint64_t, std::less<>> pending_adds_;
  std::map<std::string, uint64_t, std::less<>> pending_removes_;
  std::map<std::string, uint64_t, std::less<>> cancelled_adds_;
  size_t pending_add_total_ = 0;
  size_t pending_remove_total_ = 0;
  size_t cancelled_total_ = 0;
  uint64_t epoch_ = 0;
};

}  // namespace shbf

#endif  // SHBF_ENGINE_DYNAMIC_FILTER_H_
