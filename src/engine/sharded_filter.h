// ShardedFilter — hash-partitioned shards behind per-shard reader/writer
// locks, so one logical filter serves concurrent mixed add/query traffic
// (the ROADMAP's "heavy traffic from millions of users" direction).
//
// A dedicated selector hash (independent of every filter's own family —
// different fixed seed) maps each key to one of `num_shards` sub-filters.
// Writers take that shard's exclusive lock; readers take the shared lock, so
// queries on different shards never contend and queries on the same shard
// only contend with writers. Filters that rebuild lazily inside const
// queries (shbf_x, shbf_a adapters: MembershipFilter::IncrementalAdd() ==
// false) are detected at construction and read under the exclusive lock
// instead — correctness first, concurrency where the structure allows it.
//
// Two layers:
//   * ShardedFilter<F>           — generic template; F is any class with
//     Add/Contains/ContainsBatch (a concrete filter like ShbfM for fully
//     inlined shards, or MembershipFilter for registry-built shards).
//   * ShardedMembershipFilter    — MembershipFilter wrapper over
//     ShardedFilter<MembershipFilter> that routes batches through a
//     BatchQueryEngine; FilterRegistry::Create builds one when
//     FilterSpec::shards > 1 and FilterRegistry::Deserialize restores it
//     from its "sharded/<base>" envelope.

#ifndef SHBF_ENGINE_SHARDED_FILTER_H_
#define SHBF_ENGINE_SHARDED_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "api/filter_spec.h"
#include "api/set_query_filter.h"
#include "core/check.h"
#include "core/task_pool.h"
#include "engine/batch_query_engine.h"
#include "hash/hash_family.h"
#include "obs/metrics.h"

namespace shbf {

/// Seed of the shard-selector hash. Fixed (not spec-derived) so a filter
/// serialized on one process partitions identically after deserialization
/// on another, and distinct from every plausible filter seed so shard
/// selection stays independent of the shards' own hash families.
inline constexpr uint64_t kShardSelectorSeed = 0x51a2dd0c7052eedULL;

/// Hash-partitioned collection of `F` sub-filters with per-shard RW locks.
///
/// Thread safety: Add/AddBatch/Clear take the affected shards' exclusive
/// locks; Contains/ContainsBatch take shared locks (exclusive for lazily-
/// built interface shards, see file comment). Distinct shards proceed in
/// parallel. The structure itself (shard count, selector) is immutable
/// after construction.
template <typename F>
class ShardedFilter {
 public:
  /// Dispatches one sub-batch to a shard's filter; replaceable so the
  /// interface-level wrapper can route through a BatchQueryEngine. The
  /// sub-batch is view-indexed: the views point into the caller's keys, so
  /// partitioning a batch across shards copies no key bytes.
  using BatchFn =
      std::function<void(const F&, const std::vector<std::string_view>&,
                         std::vector<uint8_t>*)>;

  /// Builds `num_shards` shards by calling `make_shard(i)` for each index.
  ShardedFilter(size_t num_shards,
                const std::function<std::unique_ptr<F>(size_t)>& make_shard)
      : selector_(HashAlgorithm::kMurmur3, 1, kShardSelectorSeed) {
    SHBF_CHECK(num_shards >= 1) << "ShardedFilter needs >= 1 shard";
    shards_.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      auto shard = std::make_unique<Shard>();
      shard->filter = make_shard(i);
      SHBF_CHECK(shard->filter != nullptr);
      if constexpr (std::is_base_of_v<MembershipFilter, F>) {
        shard->exclusive_reads = !shard->filter->IncrementalAdd();
      }
      shards_.push_back(std::move(shard));
    }
    batch_fn_ = [](const F& filter, const std::vector<std::string_view>& keys,
                   std::vector<uint8_t>* results) {
      if constexpr (std::is_base_of_v<MembershipFilter, F>) {
        // The interface has a view-indexed batch entry point.
        filter.ContainsBatch(keys, results);
      } else {
        // Concrete filters take string batches; querying per key through
        // their string_view Contains avoids materializing copies.
        results->resize(keys.size());
        for (size_t i = 0; i < keys.size(); ++i) {
          (*results)[i] = filter.Contains(keys[i]) ? 1 : 0;
        }
      }
    };
  }

  /// The shard `key` routes to (stable across processes and serde).
  size_t ShardOf(std::string_view key) const {
    return selector_.Hash(0, key) % shards_.size();
  }

  size_t num_shards() const { return shards_.size(); }

  /// Thread-safe single-key insert.
  void Add(std::string_view key) {
    Shard& shard = *shards_[ShardOf(key)];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.filter->Add(key);
  }

  /// Thread-safe bulk insert: keys are partitioned by shard first, so each
  /// shard's exclusive lock is taken once per batch, not once per key.
  void AddBatch(const std::vector<std::string>& keys) {
    std::vector<std::vector<const std::string*>> partition(shards_.size());
    for (const auto& key : keys) partition[ShardOf(key)].push_back(&key);
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (partition[s].empty()) continue;
      Shard& shard = *shards_[s];
      std::unique_lock<std::shared_mutex> lock(shard.mu);
      for (const std::string* key : partition[s]) shard.filter->Add(*key);
    }
  }

  /// Thread-safe single-key removal under the shard's exclusive lock.
  /// Only instantiable when F exposes MembershipFilter::Remove.
  Status Remove(std::string_view key) {
    Shard& shard = *shards_[ShardOf(key)];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    return shard.filter->Remove(key);
  }

  /// Thread-safe single-key query.
  bool Contains(std::string_view key) const {
    const Shard& shard = *shards_[ShardOf(key)];
    bool found = false;
    WithReadLock(shard, [&] { found = shard.filter->Contains(key); });
    return found;
  }

  /// Thread-safe batched query: keys are partitioned by shard, each shard
  /// answers its sub-batch through `batch_fn` under one lock hold, and the
  /// answers scatter back into caller order. `results` is resized to
  /// `keys.size()`; entry i equals Contains(keys[i]). Partitioning gathers
  /// views into the caller's keys — no key bytes are copied.
  void ContainsBatch(const std::vector<std::string>& keys,
                     std::vector<uint8_t>* results) const {
    ContainsBatchAnyKeys(keys, results);
  }

  /// View-indexed overload; the views must outlive the call.
  void ContainsBatch(const std::vector<std::string_view>& keys,
                     std::vector<uint8_t>* results) const {
    ContainsBatchAnyKeys(keys, results);
  }

  /// Sum of the shards' element counts.
  size_t num_elements() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      WithReadLock(*shard, [&] { total += shard->filter->num_elements(); });
    }
    return total;
  }

  /// Resets every shard to empty.
  void Clear() {
    for (auto& shard : shards_) {
      std::unique_lock<std::shared_mutex> lock(shard->mu);
      shard->filter->Clear();
    }
  }

  /// Runs `fn(shard_index, filter)` under the shard's shared lock (stats,
  /// serialization). Do not mutate through this.
  void ForEachShard(
      const std::function<void(size_t, const F&)>& fn) const {
    for (size_t s = 0; s < shards_.size(); ++s) {
      WithReadLock(*shards_[s], [&] { fn(s, *shards_[s]->filter); });
    }
  }

  /// Replaces the per-shard batch dispatcher (see BatchFn).
  void SetBatchFn(BatchFn fn) { batch_fn_ = std::move(fn); }

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::unique_ptr<F> filter;
    /// True when the filter mutates inside const queries (lazy rebuild):
    /// reads then need the exclusive lock.
    bool exclusive_reads = false;
  };

  /// Below this many keys the fan-out's task handoff costs more than the
  /// serial loop saves; measured on the serve smoke workloads.
  static constexpr size_t kParallelBatchMinKeys = 512;

  template <typename Keys>
  void ContainsBatchAnyKeys(const Keys& keys,
                            std::vector<uint8_t>* results) const {
    results->resize(keys.size());
    if (keys.empty()) return;
    std::vector<std::vector<size_t>> partition(shards_.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      partition[ShardOf(keys[i])].push_back(i);
    }
    // Only shards that drew keys participate; a skewed batch on a wide
    // ensemble should not spawn empty tasks.
    std::vector<size_t> active;
    active.reserve(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (!partition[s].empty()) active.push_back(s);
    }
    // Shard balance telemetry: the per-active-shard partition sizes. A
    // healthy selector keeps the histogram tight around keys/shards; a
    // heavy tail here means batch latency is pinned to one hot shard.
    if (obs::Enabled()) {
      static obs::Counter* const batches =
          obs::MetricsRegistry::Global().GetCounter("sharded.batches_total");
      static obs::Histogram* const shard_keys =
          obs::MetricsRegistry::Global().GetHistogram(
              "sharded.shard_batch_keys");
      batches->Increment();
      for (size_t s : active) shard_keys->Record(partition[s].size());
    }
    // One task per active shard: each gathers its views, answers under its
    // own lock, and scatters into result slots no other shard owns (every
    // key index lives in exactly one partition), so tasks share nothing but
    // the pre-sized output vector. Answers are bit-identical to the serial
    // loop — parallelism only reorders *when* disjoint slots are written.
    auto run_shard = [&](size_t s) {
      std::vector<std::string_view> shard_keys;
      std::vector<uint8_t> shard_results;
      shard_keys.reserve(partition[s].size());
      for (size_t i : partition[s]) shard_keys.emplace_back(keys[i]);
      const Shard& shard = *shards_[s];
      WithReadLock(shard, [&] {
        batch_fn_(*shard.filter, shard_keys, &shard_results);
      });
      for (size_t j = 0; j < partition[s].size(); ++j) {
        (*results)[partition[s][j]] = shard_results[j];
      }
    };
    if (active.size() >= 2 && keys.size() >= kParallelBatchMinKeys) {
      TaskPool::Shared().ParallelFor(
          active.size(), [&](size_t t) { run_shard(active[t]); });
    } else {
      for (size_t s : active) run_shard(s);
    }
  }

  template <typename Fn>
  void WithReadLock(const Shard& shard, Fn&& fn) const {
    if (shard.exclusive_reads) {
      std::unique_lock<std::shared_mutex> lock(shard.mu);
      fn();
    } else {
      std::shared_lock<std::shared_mutex> lock(shard.mu);
      fn();
    }
  }

  HashFamily selector_;
  std::vector<std::unique_ptr<Shard>> shards_;
  BatchFn batch_fn_;
};

class FilterRegistry;

/// MembershipFilter facade over ShardedFilter<MembershipFilter>: the object
/// FilterRegistry::Create returns when FilterSpec::shards > 1. Batched
/// queries route through a BatchQueryEngine sized by FilterSpec::batch_size,
/// so each shard's sub-batch takes the non-virtual prefetching fast path
/// when its filter offers one.
class ShardedMembershipFilter : public MembershipFilter {
 public:
  /// Envelope names are "sharded/<base>"; see name().
  static constexpr std::string_view kNamePrefix = "sharded/";

  /// Wraps `shards` (all built from the same base registry entry named
  /// `base_name`). `batch_size` feeds the internal engine.
  ShardedMembershipFilter(std::string base_name, size_t batch_size,
                          std::vector<std::unique_ptr<MembershipFilter>> shards);

  /// "sharded/<base>", e.g. "sharded/shbf_m" — what the serde envelope
  /// carries and FilterRegistry::Deserialize dispatches on.
  std::string_view name() const override { return name_; }

  void Add(std::string_view key) override { sharded_.Add(key); }

  /// Thread-safe bulk insert (not part of MembershipFilter; the sharded
  /// wrapper's reason to exist).
  void AddBatch(const std::vector<std::string>& keys) {
    sharded_.AddBatch(keys);
  }

  bool Contains(std::string_view key) const override {
    return sharded_.Contains(key);
  }

  void ContainsBatch(const std::vector<std::string>& keys,
                     std::vector<uint8_t>* results) const override {
    sharded_.ContainsBatch(keys, results);
  }

  void ContainsBatch(const std::vector<std::string_view>& keys,
                     std::vector<uint8_t>* results) const override {
    sharded_.ContainsBatch(keys, results);
  }

  /// Routes to the owning shard under its exclusive lock; the shards must
  /// advertise kRemove (counting bases, or any base behind the dynamic
  /// wrapper).
  Status Remove(std::string_view key) override {
    if ((capabilities_ & kRemove) == 0) {
      return Status::FailedPrecondition(
          name_ + ": shards do not support Remove");
    }
    return sharded_.Remove(key);
  }

  /// Intersection of the shards' capability bits. kMergeable is always
  /// masked out: merging sharded ensembles is not implemented.
  uint32_t capabilities() const override { return capabilities_; }

  bool IncrementalAdd() const override {
    return (capabilities_ & kIncrementalAdd) != 0;
  }

  size_t num_elements() const override { return sharded_.num_elements(); }
  size_t memory_bytes() const override;
  void Clear() override { sharded_.Clear(); }

  /// Per-shard registry envelopes, length-prefixed.
  std::string ToBytes() const override;

  /// Reconstructs from a ToBytes() payload; `envelope_name` is the full
  /// "sharded/<base>" name from the registry envelope and `registry`
  /// resolves the per-shard blobs. Called by FilterRegistry::Deserialize.
  static Status Deserialize(std::string_view envelope_name,
                            std::string_view payload,
                            const FilterRegistry& registry,
                            std::unique_ptr<MembershipFilter>* out);

  size_t num_shards() const { return sharded_.num_shards(); }
  const ShardedFilter<MembershipFilter>& sharded() const { return sharded_; }

 private:
  std::string name_;
  size_t batch_size_;
  BatchQueryEngine engine_;
  ShardedFilter<MembershipFilter> sharded_;
  uint32_t capabilities_ = 0;
};

}  // namespace shbf

#endif  // SHBF_ENGINE_SHARDED_FILTER_H_
