// AutoScalingFilter — chained fixed-FPR generations for unbounded growth
// (the scalable-Bloom-filter construction applied to every registered
// scheme; cf. the dynamic/scalable variants surveyed in "Shed More Light on
// Bloom Filter's Variants" and the multi-filter composition of Bloofi).
//
// A fixed-size filter sized for n keys degrades past its design point: FPR
// climbs with every extra insert. This wrapper instead SEALS the current
// generation when its add budget is exhausted and opens a new one with
// doubled capacity and doubled cells — bits-per-key (hence per-generation
// FPR) stays constant, and the geometric growth bounds both the number of
// generations (log₂ of total keys) and the compound false-positive rate
// (≤ generations × per-generation FPR).
//
//   Add ──────────────► generation[newest]     (seals at capacity·2^g keys)
//   Contains(key) ◄──── OR over generations, newest first
//   Remove(key)  ◄───── first generation that Contains it (base must
//                       advertise kRemove; the usual counting hazard —
//                       a false positive in a newer generation can misroute
//                       the remove — is documented, not hidden)
//
// Each generation draws a distinct hash seed, so collisions are independent
// across generations. FilterRegistry::Create builds one when
// FilterSpec::auto_scale is set ("scaling/<base>"); combined with
// delta_capacity the dynamic wrapper folds into the scaling chain
// ("dynamic/scaling/<base>").

#ifndef SHBF_ENGINE_AUTO_SCALING_FILTER_H_
#define SHBF_ENGINE_AUTO_SCALING_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/filter_spec.h"
#include "api/set_query_filter.h"

namespace shbf {

class FilterRegistry;

class AutoScalingFilter : public MembershipFilter {
 public:
  /// Envelope names are "scaling/<base>", e.g. "scaling/shbf_m".
  static constexpr std::string_view kNamePrefix = "scaling/";

  /// Builds the wrapper with its first generation. `base_name` must be a
  /// registered entry; `base_spec` sizes generation 0 and must be sanitized
  /// (delta_capacity = 0, auto_scale = false, shards = 1). `gen_capacity`
  /// is generation 0's add budget (doubles per generation; clamped to 1).
  /// `registry` must outlive the filter (it builds later generations).
  static Status Create(const std::string& base_name,
                       const FilterSpec& base_spec,
                       const FilterRegistry& registry, size_t gen_capacity,
                       std::unique_ptr<AutoScalingFilter>* out);

  std::string_view name() const override { return name_; }

  /// Adds to the newest generation, sealing it and opening a doubled one
  /// when the add budget is exhausted.
  void Add(std::string_view key) override;

  bool Contains(std::string_view key) const override;
  void ContainsBatch(const std::vector<std::string>& keys,
                     std::vector<uint8_t>* results) const override;

  /// Removes from the first generation (newest first) that Contains `key`.
  /// Requires the base scheme to advertise kRemove.
  Status Remove(std::string_view key) override;

  bool IncrementalAdd() const override { return base_incremental_; }

  /// Every generation completes its deferred build — Contains short-
  /// circuits newest-first, so a probe query cannot be trusted to reach a
  /// dirty older generation.
  void PrepareForConstReads() override {
    for (auto& generation : generations_) {
      generation.filter->PrepareForConstReads();
    }
  }
  uint32_t capabilities() const override {
    // Never kMergeable: generations have differing geometry by design.
    return base_caps_ & (kIncrementalAdd | kRemove);
  }

  size_t num_elements() const override;
  size_t memory_bytes() const override;

  /// Drops back to a single empty generation 0.
  void Clear() override;

  size_t num_generations() const { return generations_.size(); }

  /// Generation g's add budget: gen_capacity · 2^g.
  size_t generation_capacity(size_t g) const { return gen_capacity_ << g; }

  const MembershipFilter& generation(size_t g) const {
    return *generations_[g].filter;
  }

  /// Payload: base name, spec, capacity, then each generation's add count +
  /// nested registry envelope.
  std::string ToBytes() const override;

  /// Reconstructs from a ToBytes() payload; `envelope_name` is the full
  /// "scaling/<base>" name and `registry` resolves the nested envelopes.
  static Status Deserialize(std::string_view envelope_name,
                            std::string_view payload,
                            const FilterRegistry& registry,
                            std::unique_ptr<MembershipFilter>* out);

 private:
  struct Generation {
    std::unique_ptr<MembershipFilter> filter;
    size_t adds = 0;
  };

  AutoScalingFilter(std::string base_name, const FilterSpec& base_spec,
                    const FilterRegistry& registry, size_t gen_capacity);

  /// The spec of generation `g`: cells and expected keys double per
  /// generation, the seed is re-salted so hash collisions are independent.
  FilterSpec GenerationSpec(size_t g) const;

  Status OpenGeneration();

  std::string name_;
  std::string base_name_;
  FilterSpec base_spec_;
  const FilterRegistry* registry_;
  size_t gen_capacity_;
  uint32_t base_caps_ = 0;
  bool base_incremental_ = true;
  std::vector<Generation> generations_;
};

}  // namespace shbf

#endif  // SHBF_ENGINE_AUTO_SCALING_FILTER_H_
