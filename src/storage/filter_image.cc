#include "storage/filter_image.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/check.h"
#include "core/file_io.h"
#include "core/serde.h"
#include "hash/murmur3.h"

namespace shbf {
namespace storage {

namespace {

/// Fixed seed for every image checksum; distinct from any filter seed so a
/// payload never accidentally checksums itself.
constexpr uint64_t kChecksumSeed = 0x51bf51bf51bf51bfull;

uint64_t RoundUpPage(uint64_t bytes) {
  return (bytes + kImagePageBytes - 1) & ~uint64_t{kImagePageBytes - 1};
}

/// Every region's stride leaves at least kImageGuardBytes readable past the
/// payload — when the payload ends exactly on a page boundary the stride
/// grows by a whole page rather than let LoadWindow() touch unmapped memory.
uint64_t RegionStride(uint64_t payload_bytes) {
  return RoundUpPage(payload_bytes + kImageGuardBytes);
}

Status IoError(const std::string& what, const std::string& path, int err) {
  const std::string message = what + " " + path + ": " + std::strerror(err);
  if (err == ENOSPC || err == EDQUOT || err == EFBIG) {
    return Status::ResourceExhausted(message);
  }
  return Status::Internal(message);
}

}  // namespace

uint64_t ImageChecksum(const void* data, size_t len) {
  const auto [lo, hi] = Murmur3_128(data, len, kChecksumSeed);
  return lo ^ hi;
}

uint64_t RegionOffset(const std::vector<RegionPayload>& payloads,
                      size_t index) {
  uint64_t offset = kImagePageBytes;  // header page
  for (size_t i = 0; i < index; ++i) offset += RegionStride(payloads[i].bytes);
  return offset;
}

uint64_t ImageFileBytes(const std::vector<RegionPayload>& payloads) {
  return RegionOffset(payloads, payloads.size());
}

std::string EncodeImageHeader(const ImageHeader& header) {
  SHBF_CHECK(!header.filter_name.empty() &&
             header.filter_name.size() <= kImageMaxNameBytes);
  SHBF_CHECK(!header.regions.empty() &&
             header.regions.size() <= kImageMaxRegions);
  ByteWriter writer;
  writer.PutU32(kImageMagic);
  writer.PutU32(kImageVersion);
  writer.PutU64(header.generation);
  writer.PutU32(static_cast<uint32_t>(header.filter_name.size()));
  writer.PutBytes(header.filter_name.data(), header.filter_name.size());
  const ImageGeometry& g = header.geometry;
  writer.PutU64(g.num_bits);
  writer.PutU32(g.num_hashes);
  writer.PutU32(g.block_bits);
  writer.PutU32(g.sub_block_bits);
  writer.PutU32(g.max_offset_span);
  writer.PutU8(g.hash_algorithm);
  writer.PutU64(g.seed);
  writer.PutU64(g.num_elements);
  writer.PutU64(g.array_total_bits);
  writer.PutU32(static_cast<uint32_t>(header.regions.size()));
  for (const RegionDesc& region : header.regions) {
    writer.PutU64(region.offset);
    writer.PutU64(region.bytes);
    writer.PutU64(region.checksum);
  }
  std::string page = writer.Take();
  SHBF_CHECK(page.size() + 8 <= kImagePageBytes);
  const uint64_t checksum = ImageChecksum(page.data(), page.size());
  ByteWriter tail;
  tail.PutU64(checksum);
  page += tail.Take();
  page.resize(kImagePageBytes, '\0');
  return page;
}

Status DecodeImageHeader(const uint8_t* data, size_t size, ImageHeader* out) {
  if (size < kImagePageBytes) {
    return Status::InvalidArgument(
        "truncated image: " + std::to_string(size) +
        " bytes, smaller than the header page");
  }
  ByteReader reader(
      std::string_view(reinterpret_cast<const char*>(data), kImagePageBytes));
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!reader.GetU32(&magic) || magic != kImageMagic) {
    return Status::InvalidArgument("field magic: not a filter image");
  }
  if (!reader.GetU32(&version) || version != kImageVersion) {
    return Status::InvalidArgument(
        "field version: unsupported image version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kImageVersion) + ")");
  }
  ImageHeader header;
  uint32_t name_len = 0;
  if (!reader.GetU64(&header.generation) || !reader.GetU32(&name_len)) {
    return Status::InvalidArgument("field generation/name: truncated header");
  }
  if (name_len == 0 || name_len > kImageMaxNameBytes) {
    return Status::InvalidArgument("field name: length " +
                                   std::to_string(name_len) +
                                   " outside [1, " +
                                   std::to_string(kImageMaxNameBytes) + "]");
  }
  header.filter_name.resize(name_len);
  if (!reader.GetBytes(header.filter_name.data(), name_len)) {
    return Status::InvalidArgument("field name: truncated header");
  }
  ImageGeometry& g = header.geometry;
  if (!reader.GetU64(&g.num_bits) || !reader.GetU32(&g.num_hashes) ||
      !reader.GetU32(&g.block_bits) || !reader.GetU32(&g.sub_block_bits) ||
      !reader.GetU32(&g.max_offset_span) || !reader.GetU8(&g.hash_algorithm) ||
      !reader.GetU64(&g.seed) || !reader.GetU64(&g.num_elements) ||
      !reader.GetU64(&g.array_total_bits)) {
    return Status::InvalidArgument("field geometry: truncated header");
  }
  uint32_t region_count = 0;
  if (!reader.GetU32(&region_count) || region_count == 0 ||
      region_count > kImageMaxRegions) {
    return Status::InvalidArgument(
        "field region_count: " + std::to_string(region_count) +
        " outside [1, " + std::to_string(kImageMaxRegions) + "]");
  }
  header.regions.resize(region_count);
  for (RegionDesc& region : header.regions) {
    if (!reader.GetU64(&region.offset) || !reader.GetU64(&region.bytes) ||
        !reader.GetU64(&region.checksum)) {
      return Status::InvalidArgument("field regions: truncated header");
    }
  }
  // The checksum sits immediately after the parsed fields; everything
  // consumed so far must hash to it. All length fields above were
  // range-checked before use, so a corrupted header can steer *which*
  // bytes get compared but never an out-of-bounds read.
  const size_t checked_bytes = kImagePageBytes - reader.remaining();
  uint64_t stored_checksum = 0;
  if (!reader.GetU64(&stored_checksum)) {
    return Status::InvalidArgument("field header_checksum: truncated header");
  }
  const uint64_t computed = ImageChecksum(data, checked_bytes);
  if (stored_checksum != computed) {
    return Status::InvalidArgument(
        "field header_checksum: mismatch (corrupt or torn header)");
  }
  // Region table vs the real file size: every span, guard included, must be
  // mapped, page-aligned, and past the header.
  uint64_t previous_end = kImagePageBytes;
  for (size_t i = 0; i < header.regions.size(); ++i) {
    const RegionDesc& region = header.regions[i];
    const std::string field = "field region[" + std::to_string(i) + "]";
    if (region.offset % kImagePageBytes != 0 ||
        region.offset < kImagePageBytes) {
      return Status::InvalidArgument(field + ".offset: " +
                                     std::to_string(region.offset) +
                                     " is not a page-aligned payload offset");
    }
    if (region.bytes == 0 || region.offset > size ||
        region.bytes > size - region.offset ||
        kImageGuardBytes > size - region.offset - region.bytes) {
      return Status::InvalidArgument(
          field + ".bytes: span [" + std::to_string(region.offset) + ", +" +
          std::to_string(region.bytes) +
          " + guard) falls outside the mapped file (" + std::to_string(size) +
          " bytes)");
    }
    if (region.offset < previous_end) {
      return Status::InvalidArgument(field +
                                     ".offset: overlaps the previous region");
    }
    previous_end = region.offset + region.bytes;
  }
  // The writer pads the last region's stride to a whole page and commits
  // via atomic rename, so a committed image has exactly the size its
  // region table implies. Anything shorter lost tail bytes, anything
  // longer gained them — reject both rather than guess.
  const uint64_t expected_size =
      header.regions.empty()
          ? uint64_t{kImagePageBytes}
          : previous_end - header.regions.back().bytes +
                RegionStride(header.regions.back().bytes);
  if (size != expected_size) {
    return Status::InvalidArgument(
        "field file_size: " + std::to_string(size) + " bytes on disk, " +
        std::to_string(expected_size) +
        " implied by the region table (torn or padded image)");
  }
  *out = std::move(header);
  return Status::Ok();
}

Status VerifyRegionChecksum(const ImageHeader& header, size_t index,
                            const uint8_t* file_data) {
  const RegionDesc& region = header.regions[index];
  const uint64_t computed =
      ImageChecksum(file_data + region.offset, region.bytes);
  if (computed != region.checksum) {
    return Status::InvalidArgument(
        "field region[" + std::to_string(index) +
        "].checksum: payload checksum mismatch (corrupt image)");
  }
  return Status::Ok();
}

Status WriteImageFile(const std::string& path, ImageHeader* header,
                      const std::vector<RegionPayload>& payloads) {
  if (payloads.empty() || payloads.size() > kImageMaxRegions) {
    return Status::InvalidArgument("image needs 1.." +
                                   std::to_string(kImageMaxRegions) +
                                   " regions");
  }
  header->regions.resize(payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    header->regions[i].offset = RegionOffset(payloads, i);
    header->regions[i].bytes = payloads[i].bytes;
    header->regions[i].checksum =
        ImageChecksum(payloads[i].data, payloads[i].bytes);
  }
  const uint64_t file_bytes = ImageFileBytes(payloads);
  const std::string page = EncodeImageHeader(*header);

  // Temp file beside the target (same filesystem, so rename is atomic);
  // pid-suffixed so concurrent writers never share one.
  const std::string temp_path =
      path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(temp_path.c_str(),
                        O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return IoError("cannot create", temp_path, errno);
  Status status = Status::Ok();
  uint8_t* image = nullptr;
  if (::ftruncate(fd, static_cast<off_t>(file_bytes)) != 0) {
    status = IoError("cannot size", temp_path, errno);
  }
  if (status.ok()) {
    void* mapping = ::mmap(nullptr, file_bytes, PROT_READ | PROT_WRITE,
                           MAP_SHARED, fd, 0);
    if (mapping == MAP_FAILED) {
      status = IoError("cannot mmap", temp_path, errno);
    } else {
      image = static_cast<uint8_t*>(mapping);
    }
  }
  if (status.ok()) {
    std::memcpy(image, page.data(), page.size());
    for (size_t i = 0; i < payloads.size(); ++i) {
      std::memcpy(image + header->regions[i].offset, payloads[i].data,
                  payloads[i].bytes);
    }
    // msync-on-snapshot: the dirty image pages reach the device before the
    // rename publishes them — the crash-consistency half the header's
    // generation field is asserted against.
    if (::msync(image, file_bytes, MS_SYNC) != 0) {
      status = IoError("cannot msync", temp_path, errno);
    }
  }
  if (image != nullptr) ::munmap(image, file_bytes);
  if (status.ok() && ::fsync(fd) != 0) {
    status = IoError("cannot fsync", temp_path, errno);
  }
  ::close(fd);
  if (status.ok() && ::rename(temp_path.c_str(), path.c_str()) != 0) {
    status = IoError("cannot rename into", path, errno);
  }
  if (!status.ok()) {
    ::unlink(temp_path.c_str());
    return status;
  }
  return SyncDirectory(DirectoryOf(path));
}

}  // namespace storage
}  // namespace shbf
