#include "storage/mapped_filter.h"

#include <utility>

#include "core/check.h"

namespace shbf {
namespace storage {

MappedFilter::MappedFilter(MappedFile file,
                           std::unique_ptr<MembershipFilter> inner,
                           uint64_t generation)
    : file_(std::move(file)),
      inner_(std::move(inner)),
      generation_(generation) {
  SHBF_CHECK(file_.valid() && inner_ != nullptr);
}

void MappedFilter::Clear() {
  SHBF_CHECK(false) << "Clear on read-only mapped filter " << file_.path();
}

void MappedFilter::Add(std::string_view key) {
  (void)key;
  SHBF_CHECK(false) << "Add on read-only mapped filter " << file_.path()
                    << "; RELOAD a heap envelope to mutate";
}

}  // namespace storage
}  // namespace shbf
