// Filter image — the versioned flat file format behind SaveMapped/OpenMapped.
//
// Layout (all integers little-endian; full diagram in docs/persistence.md):
//
//   page 0 (4096 B)   header: magic "SHBI", format version, generation,
//                     filter name, geometry record, region table, and a
//                     64-bit checksum over every preceding header byte.
//   page 1..          one region per array, each starting on its own page
//                     boundary. A bit-array region stores exactly the
//                     owning BitArray's PayloadBytes(); the pages after it
//                     are zero up to the next boundary, which always leaves
//                     >= 8 readable guard bytes past the payload — so
//                     LoadWindow() at the final bit position stays inside
//                     the mapping (never SIGBUS on a page-aligned tail).
//
// The header names every region by (offset, length, checksum); offsets are
// page-aligned, which also makes them 64-byte aligned as BitArray views
// require. The header checksum is always verified on open; region payload
// checksums are verified when OpenOptions.verify_payload asks (the fast
// default open touches only page 0 — that is the whole point of the
// format). Decode failures are Status, never a crash: every field is
// bounds-checked against the mapped size before anything dereferences it.
//
// Crash consistency (WriteImageFile): build the image in a temp file in the
// target's directory, msync + fsync it, rename(2) over the target, fsync
// the directory. A reader that opens the path therefore sees either the
// complete old image or the complete new one — never a torn mix — which the
// crash harness (tests/storage_crash_test.cc) enforces by SIGKILLing a
// writer at randomized points.

#ifndef SHBF_STORAGE_FILTER_IMAGE_H_
#define SHBF_STORAGE_FILTER_IMAGE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace shbf {
namespace storage {

/// "SHBI" — image, as distinct from the byte-envelope magic "SHBR".
inline constexpr uint32_t kImageMagic = 0x49424853u;

/// Bumped when the header layout changes shape.
inline constexpr uint32_t kImageVersion = 1;

/// Header size and region alignment; one x86/arm base page.
inline constexpr size_t kImagePageBytes = 4096;

/// Readable bytes guaranteed past every region's payload (BitArray's
/// LoadWindow guard). Region strides are rounded so this always holds.
inline constexpr size_t kImageGuardBytes = 8;

/// Longest filter name an image can carry.
inline constexpr size_t kImageMaxNameBytes = 120;

/// Most regions a header can describe (one per array; every current filter
/// uses one, counting filters would use two).
inline constexpr size_t kImageMaxRegions = 4;

/// One mapped array: `offset` is page-aligned, `bytes` is the exact payload
/// size (guard/padding excluded), `checksum` is ImageChecksum(payload).
struct RegionDesc {
  uint64_t offset = 0;
  uint64_t bytes = 0;
  uint64_t checksum = 0;
};

/// The filter-specific geometry record: a fixed superset of the four
/// mmap-able filters' Params. Openers validate every field against what the
/// named filter would derive before any array view is built.
struct ImageGeometry {
  uint64_t num_bits = 0;         ///< logical m (block-aligned where applicable)
  uint32_t num_hashes = 0;       ///< k
  uint32_t block_bits = 0;       ///< split-block variants; 0 otherwise
  uint32_t sub_block_bits = 0;   ///< split-block variants; 0 otherwise
  uint32_t max_offset_span = 0;  ///< shifting variants; 0 otherwise
  uint8_t hash_algorithm = 0;    ///< HashAlgorithm enum value
  uint64_t seed = 0;             ///< the hash family's master seed
  uint64_t num_elements = 0;     ///< adds observed by the saved filter
  uint64_t array_total_bits = 0; ///< num_bits + slack: what region 0 spans
};

/// Everything page 0 carries (minus the checksum, which EncodeImageHeader
/// computes and DecodeImageHeader verifies).
struct ImageHeader {
  uint64_t generation = 0;   ///< writer-chosen; crash harness' old/new marker
  std::string filter_name;   ///< registry name ("bloom", "shbf_m", ...)
  ImageGeometry geometry;
  std::vector<RegionDesc> regions;
};

/// One region's mapped bytes, handed to a filter's mapped opener.
struct MappedRegionView {
  const uint8_t* data = nullptr;
  size_t bytes = 0;
};

/// One region's source bytes, handed back by a filter's mapped saver
/// (borrowed from the live filter; valid for the duration of the save).
struct RegionPayload {
  const uint8_t* data = nullptr;
  size_t bytes = 0;
};

/// The image checksum (a 64-bit fold of Murmur3_128 under a fixed seed);
/// used for both the header and each region payload.
uint64_t ImageChecksum(const void* data, size_t len);

/// Region `index`'s page-aligned offset given the payload sizes of the
/// regions before it (header page first, then each region's stride =
/// RoundUp(bytes + kImageGuardBytes, page)).
uint64_t RegionOffset(const std::vector<RegionPayload>& payloads,
                      size_t index);

/// Total file size for `payloads` (header page + every region stride).
uint64_t ImageFileBytes(const std::vector<RegionPayload>& payloads);

/// Renders the full header page (kImagePageBytes, zero-padded, trailing
/// checksum). `header.regions` must already be laid out.
std::string EncodeImageHeader(const ImageHeader& header);

/// Parses and validates a header page against the mapped `size`: magic,
/// version, name/geometry bounds, region table (page-aligned offsets,
/// in-bounds spans including the guard), and the header checksum. Failure
/// messages name the offending field; callers prefix the file path.
Status DecodeImageHeader(const uint8_t* data, size_t size, ImageHeader* out);

/// Verifies region `index`'s payload checksum over the mapped bytes.
Status VerifyRegionChecksum(const ImageHeader& header, size_t index,
                            const uint8_t* file_data);

/// Writes a complete image (header built from `header` + `payloads`, one
/// region per payload) crash-consistently: temp file in the target's
/// directory → msync + fsync → rename over `path` → directory fsync.
/// Fills `header->regions`. ENOSPC-class failures surface as
/// kResourceExhausted with the path in the message; the target is never
/// left torn.
Status WriteImageFile(const std::string& path, ImageHeader* header,
                      const std::vector<RegionPayload>& payloads);

}  // namespace storage
}  // namespace shbf

#endif  // SHBF_STORAGE_FILTER_IMAGE_H_
