#include "storage/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace shbf {
namespace storage {

MappedFile::~MappedFile() { Reset(); }

void MappedFile::Reset() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_), path_(std::move(other.path_)) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
  Reset();
  data_ = other.data_;
  size_ = other.size_;
  path_ = std::move(other.path_);
  other.data_ = nullptr;
  other.size_ = 0;
  return *this;
}

Status MappedFile::OpenReadOnly(const std::string& path, MappedFile* out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal("cannot stat " + path + ": " +
                            std::strerror(err));
  }
  if (!S_ISREG(st.st_mode) || st.st_size <= 0) {
    ::close(fd);
    return Status::InvalidArgument(path + ": not a non-empty regular file");
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  // The mapping outlives the fd: pages stay valid until munmap.
  ::close(fd);
  if (mapping == MAP_FAILED) {
    return Status::Internal("cannot mmap " + path + ": " +
                            std::strerror(errno));
  }
  out->Reset();
  out->data_ = static_cast<const uint8_t*>(mapping);
  out->size_ = size;
  out->path_ = path;
  return Status::Ok();
}

}  // namespace storage
}  // namespace shbf
