// MappedFile — RAII read-only mmap of a filter image.
//
// One physical copy of the pages serves any number of processes: the
// mapping is MAP_SHARED + PROT_READ, so N servers (or N forked readers)
// mapping the same image share page-cache frames instead of each
// deserializing a private heap copy. The mapping is immutable for its whole
// lifetime — a concurrent SaveMapped replaces the *directory entry* via
// rename(2), never the bytes this mapping sees — which is what makes the
// open path TOCTOU-free: every header field is validated against, and every
// query served from, the same immutable bytes.

#ifndef SHBF_STORAGE_MAPPED_FILE_H_
#define SHBF_STORAGE_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/status.h"

namespace shbf {
namespace storage {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;

  /// Maps `path` read-only. Fails with kNotFound on an unopenable path and
  /// kInternal on an mmap error; an empty file fails (no image is empty).
  static Status OpenReadOnly(const std::string& path, MappedFile* out);

  bool valid() const { return data_ != nullptr; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  void Reset();

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  std::string path_;
};

}  // namespace storage
}  // namespace shbf

#endif  // SHBF_STORAGE_MAPPED_FILE_H_
