// MappedFilter — a read-only MembershipFilter served straight off an mmap.
//
// Open (via FilterRegistry::OpenMapped) maps the image, validates the
// header, and rebuilds the named filter's *geometry* on the heap while its
// *bit storage* stays a BitArray view into the mapping — zero
// deserialization, so open cost is independent of filter size and the
// kernel shares one physical copy of the pages across every process
// mapping the image (tests/mapped_filter_test.cc forks readers to prove
// it). Queries (Contains / ContainsBatch / the engine's batch_fast_path)
// forward to the inner filter and are bit-identical to its heap twin.
//
// The wrapper is strictly read-only: capabilities() == 0, Add/Clear
// CHECK-fail (the server refuses ADD on a read-only serve instead of ever
// reaching them). ToBytes() still works — it reads the mapped payload —
// so SNAPSHOT of a mapped filter produces a normal heap envelope.

#ifndef SHBF_STORAGE_MAPPED_FILTER_H_
#define SHBF_STORAGE_MAPPED_FILTER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/set_query_filter.h"
#include "storage/filter_image.h"
#include "storage/mapped_file.h"

namespace shbf {
namespace storage {

struct OpenOptions {
  /// Verify every region's payload checksum at open. The default open
  /// validates only the header page (that is what makes it O(1) in filter
  /// size); the corruption fuzzer and the server's mmap RELOAD turn this on.
  bool verify_payload = false;
};

class MappedFilter final : public MembershipFilter {
 public:
  /// Takes ownership of the mapping and the inner filter whose bit array
  /// views into it. Built by FilterRegistry::OpenMapped.
  MappedFilter(MappedFile file, std::unique_ptr<MembershipFilter> inner,
               uint64_t generation);

  // ---- identity / lifecycle ----
  std::string_view name() const override { return inner_->name(); }
  size_t num_elements() const override { return inner_->num_elements(); }
  size_t memory_bytes() const override { return file_.size(); }
  void Clear() override;
  std::string ToBytes() const override { return inner_->ToBytes(); }

  // ---- queries: forwarded, bit-identical to the heap twin ----
  bool Contains(std::string_view key) const override {
    return inner_->Contains(key);
  }
  bool ContainsWithStats(std::string_view key,
                         QueryStats* stats) const override {
    return inner_->ContainsWithStats(key, stats);
  }
  void ContainsBatch(const std::vector<std::string>& keys,
                     std::vector<uint8_t>* results) const override {
    inner_->ContainsBatch(keys, results);
  }
  void ContainsBatch(const std::vector<std::string_view>& keys,
                     std::vector<uint8_t>* results) const override {
    inner_->ContainsBatch(keys, results);
  }
  BatchFastPath batch_fast_path() const override {
    return inner_->batch_fast_path();
  }

  // ---- read-only contract ----
  void Add(std::string_view key) override;
  uint32_t capabilities() const override { return 0; }
  bool IncrementalAdd() const override { return false; }

  // ---- image metadata ----
  /// The writer-chosen generation stamped into the header.
  uint64_t generation() const { return generation_; }
  /// The mapped file's path and size.
  const std::string& image_path() const { return file_.path(); }
  size_t image_bytes() const { return file_.size(); }
  /// The wrapped heap-geometry filter (its storage is the mapping).
  const MembershipFilter& inner() const { return *inner_; }

 private:
  // Declaration order is load-bearing: inner_'s BitArray views point into
  // file_'s mapping, so inner_ (declared later) must be destroyed first.
  MappedFile file_;
  std::unique_ptr<MembershipFilter> inner_;
  uint64_t generation_ = 0;
};

}  // namespace storage
}  // namespace shbf

#endif  // SHBF_STORAGE_MAPPED_FILTER_H_
